// RequestCtx end to end: budget inheritance (clamp, never extend) across
// nested calls, cooperative and sweeping cancellation, traffic-class
// admission/drain ordering, and the frame lane's admission-only contract.
// The races (cancel-vs-completion, cancel-vs-park, cancel mid-batch) run
// under TSan in the tsan-rt and fault-tsan CI jobs.
#include "rt/request_ctx.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <optional>
#include <span>
#include <thread>

#include "common/tsc.h"
#include "ppc/regs.h"
#include "rt/frame_abi.h"
#include "rt/kv_service.h"
#include "rt/runtime.h"
#include "rt/xcall.h"

namespace hppc::rt {
namespace {

using obs::Counter;

ppc::RegSet make_regs(Word w0) {
  ppc::RegSet r{};
  r[0] = w0;
  return r;
}

EntryPointId bind_adder(Runtime& rt, const char* name = "adder") {
  return rt.bind({.name = name}, /*program=*/700,
                 [](RtCtx&, ppc::RegSet& regs) {
                   regs[1] = regs[0] + 1;
                   ppc::set_rc(regs, Status::kOk);
                 });
}

/// A registered slot whose owner holds the gate (kOwner) without polling
/// until released — posted cells sit in the ring, help_drain cannot steal.
class HeldSlot {
 public:
  explicit HeldSlot(Runtime& rt) : rt_(rt) {
    thread_ = std::thread([this] {
      slot_.store(rt_.register_thread(), std::memory_order_release);
      up_.store(true, std::memory_order_release);
      while (!poll_now_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (rt_.poll(slot()) > 0) {
      }
      while (!release_.load(std::memory_order_acquire)) {
        rt_.poll(slot());
        std::this_thread::yield();
      }
      while (rt_.poll(slot()) > 0) {
      }
      rt_.enter_idle(slot());
    });
    while (!up_.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  SlotId slot() const { return slot_.load(std::memory_order_acquire); }
  void poll_now() { poll_now_.store(true, std::memory_order_release); }
  void release_and_join() {
    poll_now_.store(true, std::memory_order_release);
    release_.store(true, std::memory_order_release);
    thread_.join();
  }

 private:
  Runtime& rt_;
  std::thread thread_;
  std::atomic<SlotId> slot_{0};
  std::atomic<bool> up_{false};
  std::atomic<bool> poll_now_{false};
  std::atomic<bool> release_{false};
};

// ---------------------------------------------------------------------------
// Budget arithmetic
// ---------------------------------------------------------------------------

TEST(RequestCtx, ClampTightensNeverExtends) {
  EXPECT_EQ(RequestCtx::clamp_deadline(0, 0), 0u);
  EXPECT_EQ(RequestCtx::clamp_deadline(100, 0), 100u);
  EXPECT_EQ(RequestCtx::clamp_deadline(0, 50), 50u);
  EXPECT_EQ(RequestCtx::clamp_deadline(100, 50), 50u);   // tighten: ok
  EXPECT_EQ(RequestCtx::clamp_deadline(100, 500), 100u); // extend: clamped
}

TEST(RequestCtx, WithBudgetConvertsRelativeOnceAndClamps) {
  CallOptions opts;
  // No bound on either side.
  EXPECT_EQ(opts.with_budget(0), 0u);
  // Inherited only: passes through untouched.
  EXPECT_EQ(opts.with_budget(12345), 12345u);
  // Relative only: lands at now + relative (within a generous skid).
  opts.deadline_cycles = 1'000'000;
  const std::uint64_t t0 = host_cycles();
  const std::uint64_t abs = opts.with_budget(0);
  EXPECT_GE(abs, t0 + 1'000'000);
  EXPECT_LT(abs, t0 + 1'000'000 + 100'000'000);
  // Both: an inherited bound tighter than now+relative wins.
  EXPECT_EQ(opts.with_budget(1), 1u);
}

TEST(RequestCtx, ActiveAndExpiredProbes) {
  RequestCtx req;
  EXPECT_FALSE(req.active());
  EXPECT_FALSE(req.expired(host_cycles()));
  req.traffic_class = TrafficClass::kBulk;
  EXPECT_TRUE(req.active());
  req = RequestCtx{};
  req.abs_deadline_cycles = 1;  // the distant past
  EXPECT_TRUE(req.active());
  EXPECT_TRUE(req.expired(host_cycles()));
}

TEST(RequestCtx, CellPackingRoundTrips) {
  const EntryPointId wire =
      cell_pack_ep(/*ep=*/513, /*token_idx=*/0x1abc, /*bulk=*/true);
  EXPECT_EQ(cell_ep(wire), 513u);
  EXPECT_EQ(cell_token_idx(wire), 0x1abcu);
  EXPECT_TRUE(cell_is_bulk(wire));
  EXPECT_EQ(wire & kFrameCellEp, 0u);  // never collides with the frame bit
  const EntryPointId plain = cell_pack_ep(7, 0, false);
  EXPECT_EQ(plain, 7u);  // the no-context wire word IS the ep
}

// ---------------------------------------------------------------------------
// Inheritance and nested propagation
// ---------------------------------------------------------------------------

// The acceptance test: a root whose budget expires mid-handler makes every
// not-yet-executed nested call in the tree fail, without executing it.
TEST(RequestCtxPropagation, ExpiredRootStopsNestedCalls) {
  Runtime rt(3);
  const SlotId me = rt.register_thread();
  const EntryPointId leaf_local = bind_adder(rt, "leaf-local");
  const EntryPointId leaf_remote = bind_adder(rt, "leaf-remote");

  std::atomic<int> leaf_executions{0};
  const EntryPointId counting_leaf = rt.bind(
      {.name = "counting-leaf"}, 700, [&](RtCtx&, ppc::RegSet& regs) {
        leaf_executions.fetch_add(1, std::memory_order_relaxed);
        ppc::set_rc(regs, Status::kOk);
      });

  std::atomic<Status> nested_local{Status::kOk};
  std::atomic<Status> nested_remote{Status::kOk};
  std::atomic<Status> nested_counting{Status::kOk};
  std::atomic<bool> probe_fired{false};
  std::atomic<bool> outer_started{false};
  const EntryPointId outer = rt.bind(
      {.name = "outer"}, 700, [&](RtCtx& ctx, ppc::RegSet& regs) {
        outer_started.store(true, std::memory_order_release);
        // Burn the inherited budget via the cooperative probe — this is
        // also the probe's functional test.
        const std::uint64_t spin_limit = host_cycles() + 2'000'000'000ull;
        while (!ctx.cancellation_requested() && host_cycles() < spin_limit) {
        }
        probe_fired.store(ctx.cancellation_requested(),
                          std::memory_order_relaxed);
        // Every nested call now refuses at its seam.
        ppc::RegSet r1 = make_regs(1);
        nested_local.store(ctx.call(leaf_local, r1),
                           std::memory_order_relaxed);
        ppc::RegSet r2 = make_regs(2);
        nested_remote.store(
            ctx.runtime().call_remote(ctx.slot(), /*target=*/2, 700,
                                      leaf_remote, r2),
            std::memory_order_relaxed);
        ppc::RegSet r3 = make_regs(3);
        nested_counting.store(ctx.call(counting_leaf, r3),
                              std::memory_order_relaxed);
        // Hold well past the root's deadline before completing so the
        // caller deterministically abandons (the completion would
        // otherwise race the caller's expiry check).
        const std::uint64_t hold = host_cycles() + 30'000'000ull;
        while (host_cycles() < hold) {
        }
        ppc::set_rc(regs, Status::kOk);
      });

  std::atomic<bool> stop{false};
  std::atomic<bool> up{false};
  std::thread server([&] {
    const SlotId s = rt.register_thread();
    EXPECT_EQ(s, 1u);
    up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) rt.poll(s);
    while (rt.poll(s) > 0) {
    }
  });
  while (!up.load(std::memory_order_acquire)) std::this_thread::yield();

  CallOptions opts;
  opts.deadline_cycles = 3'000'000;  // enough to be drained, not to finish
  // On a loaded host the budget can expire before the server thread ever
  // drains the cell; the drain-side screen then (correctly) refuses the
  // call without running the handler — a different seam than this test
  // targets, and one that would leave nested_counting unwritten forever.
  // Retry with a doubled runway until the handler actually starts.
  Status root = Status::kOk;
  for (int attempt = 0; !outer_started.load(std::memory_order_acquire);
       ++attempt) {
    ASSERT_LT(attempt, 16) << "outer handler never drained before expiry";
    ppc::RegSet regs = make_regs(0);
    root = rt.call_remote(me, 1, 700, outer, regs, opts);
    // Stay far below the handler's 2e9-cycle burn cap so the budget
    // always expires inside the handler once it runs.
    if (opts.deadline_cycles < 200'000'000ull) opts.deadline_cycles *= 2;
  }
  EXPECT_EQ(root, Status::kDeadlineExceeded);

  // Wait until the handler (which outlives the caller's abandonment) has
  // published its nested statuses.
  while (nested_counting.load(std::memory_order_relaxed) == Status::kOk) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  server.join();

  EXPECT_TRUE(probe_fired.load());
  EXPECT_EQ(nested_local.load(), Status::kDeadlineExceeded);
  EXPECT_EQ(nested_remote.load(), Status::kDeadlineExceeded);
  EXPECT_EQ(nested_counting.load(), Status::kDeadlineExceeded);
  EXPECT_EQ(leaf_executions.load(), 0);  // never executed, not executed-late
  rt.shutdown();
}

TEST(RequestCtxPropagation, NestedOptionsTightenButNeverExtend) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);

  // Ambient budget far in the future; per-call options even further. The
  // effective bound must be the ambient one — booked as inherited.
  RequestCtx req;
  req.abs_deadline_cycles = host_cycles() + 2'000'000'000ull;
  rt.set_request_ctx(me, req);
  const auto before = rt.slot_snapshot(me);
  ppc::RegSet r = make_regs(1);
  CallOptions opts;
  opts.deadline_cycles = 200'000'000'000ull;  // would extend: must clamp
  EXPECT_EQ(rt.call_remote(me, 1, 700, ep, r, opts), Status::kOk);
  const auto delta = rt.slot_snapshot(me).delta(before);
  EXPECT_GE(delta.get(Counter::kDeadlineInherited), 1u);
  rt.clear_request_ctx(me);
  rt.shutdown();
}

TEST(RequestCtxPropagation, ExpiredAmbientScreensLocalAndRemoteCalls) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);

  RequestCtx req;
  req.abs_deadline_cycles = 1;  // the distant past
  rt.set_request_ctx(me, req);
  ppc::RegSet r = make_regs(1);
  EXPECT_EQ(rt.call(me, 700, ep, r), Status::kDeadlineExceeded);
  EXPECT_EQ(ppc::rc_of(r), Status::kDeadlineExceeded);
  r = make_regs(2);
  EXPECT_EQ(rt.call_remote(me, 1, 700, ep, r), Status::kDeadlineExceeded);
  EXPECT_EQ(ppc::rc_of(r), Status::kDeadlineExceeded);
  rt.clear_request_ctx(me);
  // Screen is ambient-only: with the context cleared the same calls pass.
  r = make_regs(3);
  EXPECT_EQ(rt.call(me, 700, ep, r), Status::kOk);
  rt.shutdown();
}

TEST(RequestCtxPropagation, AsyncDeferredCallsCarryTheContext) {
  Runtime rt(1);
  const SlotId me = rt.register_thread();
  std::atomic<int> executed{0};
  const EntryPointId ep = rt.bind(
      {.name = "tally"}, 700, [&](RtCtx&, ppc::RegSet& regs) {
        executed.fetch_add(1, std::memory_order_relaxed);
        ppc::set_rc(regs, Status::kOk);
      });

  RequestCtx req;
  req.abs_deadline_cycles = 1;  // expired before the poll can run it
  rt.set_request_ctx(me, req);
  ASSERT_EQ(rt.call_async(me, 700, ep, make_regs(1)), Status::kOk);
  rt.clear_request_ctx(me);
  const auto before = rt.slot_snapshot(me);
  rt.poll(me);
  const auto delta = rt.slot_snapshot(me).delta(before);
  EXPECT_EQ(executed.load(), 0);
  EXPECT_GE(delta.get(Counter::kDeadlineExceeded), 1u);
  // A context-free async call still executes.
  ASSERT_EQ(rt.call_async(me, 700, ep, make_regs(2)), Status::kOk);
  rt.poll(me);
  EXPECT_EQ(executed.load(), 1);
  rt.shutdown();
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(Cancellation, TokensAreDistinctAndFlagsLatch) {
  Runtime rt(1);
  const CancelToken a = rt.cancel_token_create();
  const CancelToken b = rt.cancel_token_create();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_FALSE(rt.cancel_requested(a));
  EXPECT_FALSE(rt.cancel_requested(0));
  rt.cancel(a);
  EXPECT_TRUE(rt.cancel_requested(a));
  EXPECT_FALSE(rt.cancel_requested(b));
  EXPECT_GE(rt.shared_counters().get(Counter::kCancelRequests), 1u);
}

TEST(Cancellation, CancelledTokenRefusesAtAdmission) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  const CancelToken token = rt.cancel_token_create();
  rt.cancel(token);

  CallOptions opts;
  opts.cancel_token = token;
  ppc::RegSet r = make_regs(1);
  EXPECT_EQ(rt.call_remote(me, 1, 700, ep, r, opts), Status::kCallAborted);
  EXPECT_EQ(ppc::rc_of(r), Status::kCallAborted);
  EXPECT_GE(rt.counters(me).get(Counter::kCallsCancelled), 1u);
  // Ambient tokens screen local calls too.
  RequestCtx req;
  req.cancel_token = token;
  rt.set_request_ctx(me, req);
  r = make_regs(2);
  EXPECT_EQ(rt.call(me, 700, ep, r), Status::kCallAborted);
  rt.clear_request_ctx(me);
  rt.shutdown();
}

// Cancel of cells already in a ring: the drain refuses them and kicks the
// waiting caller with kCallAborted (cancel-vs-park protocol).
TEST(Cancellation, CancelCompletesInRingCellAndKicksWaiter) {
  Runtime rt(3);
  rt.register_thread();  // main: slot 0 (observer only)
  const EntryPointId ep = bind_adder(rt);
  const CancelToken token = rt.cancel_token_create();
  HeldSlot server(rt);  // slot 1: gate held, not polling yet

  std::atomic<Status> result{Status::kOk};
  std::atomic<bool> caller_up{false};
  std::thread caller([&] {
    const SlotId s = rt.register_thread();
    caller_up.store(true, std::memory_order_release);
    CallOptions opts;
    opts.cancel_token = token;
    ppc::RegSet r = make_regs(1);
    result.store(rt.call_remote(s, server.slot(), 700, ep, r, opts),
                 std::memory_order_release);
  });
  while (!caller_up.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Wait until the cell is posted, cancel, then let the owner drain.
  while (rt.xcall_depth(server.slot()) == 0) std::this_thread::yield();
  rt.cancel(token);
  server.poll_now();
  caller.join();
  EXPECT_EQ(result.load(std::memory_order_acquire), Status::kCallAborted);
  server.release_and_join();
  rt.shutdown();
}

TEST(Cancellation, CancelOfBatchMidDrainAbortsRemainingCells) {
  Runtime rt(3);
  rt.register_thread();  // main: slot 0
  const EntryPointId ep = bind_adder(rt);
  const CancelToken token = rt.cancel_token_create();
  HeldSlot server(rt);  // slot 1

  std::array<ppc::RegSet, 24> batch{};
  for (Word i = 0; i < batch.size(); ++i) batch[i][0] = i;
  std::atomic<Status> result{Status::kOk};
  std::thread caller([&] {
    const SlotId s = rt.register_thread();
    CallOptions opts;
    opts.cancel_token = token;
    result.store(rt.call_remote_batch(s, server.slot(), 700, ep, batch, opts),
                 std::memory_order_release);
  });
  while (rt.xcall_depth(server.slot()) < batch.size()) {
    std::this_thread::yield();
  }
  rt.cancel(token);  // every queued cell now refuses at the drain
  server.poll_now();
  caller.join();
  EXPECT_EQ(result.load(std::memory_order_acquire), Status::kCallAborted);
  for (const ppc::RegSet& r : batch) {
    EXPECT_EQ(ppc::rc_of(r), Status::kCallAborted);
  }
  server.release_and_join();
  rt.shutdown();
}

// Cancel-vs-completion CAS race: cancel fires concurrently with the server
// executing the call. Either outcome is legal; nothing may hang or leak
// (shutdown asserts pool conservation). TSan-checked in CI.
TEST(Cancellation, CancelVersusCompletionRaceIsClean) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);

  std::atomic<bool> stop{false};
  std::atomic<bool> up{false};
  std::thread server([&] {
    const SlotId s = rt.register_thread();
    up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) rt.poll(s);
    while (rt.poll(s) > 0) {
    }
  });
  while (!up.load(std::memory_order_acquire)) std::this_thread::yield();

  int aborted = 0;
  int completed = 0;
  for (int i = 0; i < 400; ++i) {
    const CancelToken token = rt.cancel_token_create();
    std::thread canceller([&rt, token] { rt.cancel(token); });
    CallOptions opts;
    opts.cancel_token = token;
    ppc::RegSet r = make_regs(static_cast<Word>(i));
    const Status s = rt.call_remote(me, 1, 700, ep, r, opts);
    canceller.join();
    if (s == Status::kCallAborted) {
      ++aborted;
    } else {
      ASSERT_EQ(s, Status::kOk);
      EXPECT_EQ(r[1], static_cast<Word>(i) + 1);
      ++completed;
    }
  }
  stop.store(true, std::memory_order_release);
  server.join();
  EXPECT_EQ(aborted + completed, 400);
  rt.shutdown();
}

TEST(Cancellation, CooperativeHandlerObservesCancelMidCall) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  std::atomic<bool> handler_entered{false};
  const EntryPointId ep = rt.bind(
      {.name = "looper"}, 700, [&](RtCtx& ctx, ppc::RegSet& regs) {
        handler_entered.store(true, std::memory_order_release);
        const std::uint64_t limit = host_cycles() + 20'000'000'000ull;
        while (!ctx.cancellation_requested() && host_cycles() < limit) {
        }
        ppc::set_rc(regs, ctx.cancellation_requested() ? Status::kCallAborted
                                                       : Status::kServerError);
      });

  std::atomic<bool> stop{false};
  std::atomic<bool> up{false};
  std::thread server([&] {
    const SlotId s = rt.register_thread();
    up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) rt.poll(s);
  });
  while (!up.load(std::memory_order_acquire)) std::this_thread::yield();

  const CancelToken token = rt.cancel_token_create();
  std::thread canceller([&] {
    while (!handler_entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    rt.cancel(token);
  });
  CallOptions opts;
  opts.cancel_token = token;
  ppc::RegSet r = make_regs(1);
  // The handler runs to completion (cooperatively short-circuited); its
  // own rc reports that it saw the cancellation.
  EXPECT_EQ(rt.call_remote(me, 1, 700, ep, r, opts), Status::kCallAborted);
  canceller.join();
  stop.store(true, std::memory_order_release);
  server.join();
  rt.shutdown();
}

// ---------------------------------------------------------------------------
// Traffic classes
// ---------------------------------------------------------------------------

TEST(TrafficClass, BulkShedsFirstUnderPerClassWatermarks) {
  Runtime rt(3);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  HeldSlot server(rt);
  // Bulk sheds as soon as anything is queued; interactive keeps flowing.
  rt.set_shed_watermark(TrafficClass::kBulk, 1);
  rt.set_shed_watermark(TrafficClass::kInteractive, 32);

  // Prime one undrained cell (interactive, fire-and-forget).
  ASSERT_EQ(rt.call_remote_async(me, server.slot(), 700, ep, make_regs(0)),
            Status::kOk);
  ASSERT_GE(rt.xcall_depth(server.slot()), 1u);

  CallOptions bulk;
  bulk.traffic_class = TrafficClass::kBulk;
  EXPECT_EQ(rt.call_remote_async(me, server.slot(), 700, ep, make_regs(1),
                                 bulk),
            Status::kOverloaded);
  EXPECT_GE(rt.counters(me).get(Counter::kCallsShedBulk), 1u);
  // Interactive still admitted at the same depth.
  EXPECT_EQ(rt.call_remote_async(me, server.slot(), 700, ep, make_regs(2)),
            Status::kOk);
  // The ambient class sheds the same way options do.
  RequestCtx req;
  req.traffic_class = TrafficClass::kBulk;
  rt.set_request_ctx(me, req);
  EXPECT_EQ(rt.call_remote_async(me, server.slot(), 700, ep, make_regs(3)),
            Status::kOverloaded);
  rt.clear_request_ctx(me);
  server.release_and_join();
  rt.shutdown();
}

TEST(TrafficClass, InteractiveDrainsBeforeBulk) {
  Runtime rt(3);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  HeldSlot server(rt);

  // Queue bulk then interactive work while the owner holds the gate.
  CallOptions bulk;
  bulk.traffic_class = TrafficClass::kBulk;
  ASSERT_EQ(rt.call_remote_async(me, server.slot(), 700, ep, make_regs(0),
                                 bulk),
            Status::kOk);
  ASSERT_EQ(rt.call_remote_async(me, server.slot(), 700, ep, make_regs(1)),
            Status::kOk);
  ASSERT_GE(rt.xcall_depth(server.slot()), 2u);
  server.release_and_join();  // owner drains everything
  // The drain served the interactive doorbell first and booked that bulk
  // work had to wait behind it.
  EXPECT_GE(rt.counters(server.slot()).get(Counter::kBulkDrainsDeferred), 1u);
  EXPECT_EQ(rt.counters(me).get(Counter::kCallsBulk), 1u);
  rt.shutdown();
}

TEST(TrafficClass, BulkCallsRecordTheirOwnRtt) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  CallOptions bulk;
  bulk.traffic_class = TrafficClass::kBulk;
  ppc::RegSet r = make_regs(5);
  ASSERT_EQ(rt.call_remote(me, 1, 700, ep, r, bulk), Status::kOk);
  EXPECT_EQ(r[1], 6u);
  EXPECT_EQ(rt.hist_snapshot(me).count(obs::Hist::kRttBulk), 1u);
  rt.shutdown();
}

// ---------------------------------------------------------------------------
// The frame lane's admission-only contract
// ---------------------------------------------------------------------------

TEST(FrameLane, AmbientContextGuardsAdmission) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  std::atomic<int> executed{0};
  const FrameServiceId fid = rt.bind_frame(
      /*program=*/0,
      [](void* self, FrameCtx&, CallFrame&) {
        static_cast<std::atomic<int>*>(self)->fetch_add(
            1, std::memory_order_relaxed);
        return Status::kOk;
      },
      &executed);

  // Expired ambient budget: refused before any cell exists.
  RequestCtx req;
  req.abs_deadline_cycles = 1;
  rt.set_request_ctx(me, req);
  CallFrame f = make_frame(fid, /*op=*/1);
  EXPECT_EQ(rt.call_remote_frame(me, 1, 700, f), Status::kDeadlineExceeded);
  EXPECT_EQ(frame_rc_of(f.op), Status::kDeadlineExceeded);

  // Cancelled ambient token: same seam, kCallAborted.
  const CancelToken token = rt.cancel_token_create();
  rt.cancel(token);
  req = RequestCtx{};
  req.cancel_token = token;
  rt.set_request_ctx(me, req);
  std::array<CallFrame, 3> batch = {make_frame(fid, 1), make_frame(fid, 1),
                                    make_frame(fid, 1)};
  EXPECT_EQ(rt.call_remote_frame_batch(me, 1, 700, batch),
            Status::kCallAborted);
  for (const CallFrame& b : batch) {
    EXPECT_EQ(frame_rc_of(b.op), Status::kCallAborted);
  }
  EXPECT_EQ(executed.load(), 0);

  // Context cleared: the same frames execute.
  rt.clear_request_ctx(me);
  f = make_frame(fid, 1);
  EXPECT_EQ(rt.call_remote_frame(me, 1, 700, f), Status::kOk);
  EXPECT_EQ(executed.load(), 1);
  rt.shutdown();
}

// ---------------------------------------------------------------------------
// Warm-path audit and KvService inheritance
// ---------------------------------------------------------------------------

TEST(RequestCtxWarmPath, NoContextCallsStayZeroLockZeroAlloc) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  // Warm up (bind paths, first-call pool growth).
  ppc::RegSet r = make_regs(0);
  ASSERT_EQ(rt.call_remote(me, 1, 700, ep, r), Status::kOk);

  const auto before = rt.slot_snapshot(me);
  for (Word i = 0; i < 512; ++i) {
    r = make_regs(i);
    ASSERT_EQ(rt.call_remote(me, 1, 700, ep, r), Status::kOk);
    ASSERT_EQ(r[1], i + 1);
  }
  const auto delta = rt.slot_snapshot(me).delta(before);
  EXPECT_EQ(delta.get(Counter::kLocksTaken), 0u);
  EXPECT_EQ(rt.shared_counters().get(Counter::kMailboxAllocs), 0u);
  // The context machinery is invisible to context-free traffic.
  EXPECT_EQ(delta.get(Counter::kCallsBulk), 0u);
  EXPECT_EQ(delta.get(Counter::kCallsCancelled), 0u);
  EXPECT_EQ(delta.get(Counter::kDeadlineInherited), 0u);
  EXPECT_EQ(delta.get(Counter::kDeadlineExceeded), 0u);
  rt.shutdown();
}

TEST(KvServiceCtx, MultiGetInheritsExpiredAmbientBudget) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  KvService kv(rt);
  ASSERT_EQ(kv.put_remote(me, 1, 1, 10, 100), Status::kOk);
  ASSERT_EQ(kv.put_remote(me, 1, 1, 11, 110), Status::kOk);

  const std::array<Word, 2> keys = {10, 11};
  std::array<std::optional<Word>, 2> out;

  RequestCtx req;
  req.abs_deadline_cycles = 1;  // expired root budget
  rt.set_request_ctx(me, req);
  const auto before = rt.slot_snapshot(me);
  EXPECT_EQ(kv.multi_get(me, 1, 1, keys, out), 0u);
  const auto delta = rt.slot_snapshot(me).delta(before);
  EXPECT_FALSE(out[0].has_value());
  EXPECT_FALSE(out[1].has_value());
  EXPECT_GE(delta.get(Counter::kDeadlineExceeded), 1u);
  rt.clear_request_ctx(me);

  // Same probe with the budget cleared: both keys come back.
  EXPECT_EQ(kv.multi_get(me, 1, 1, keys, out), 2u);
  EXPECT_EQ(*out[0], 100u);
  EXPECT_EQ(*out[1], 110u);
  rt.shutdown();
}

}  // namespace
}  // namespace hppc::rt
