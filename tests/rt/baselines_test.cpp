#include <gtest/gtest.h>

#include <thread>

#include "rt/global_pool.h"
#include "rt/msgq.h"

namespace hppc::rt {
namespace {

using ppc::RegSet;
using ppc::set_op;
using ppc::set_rc;

TEST(GlobalPool, BasicCall) {
  GlobalPoolRuntime rt;
  const EntryPointId ep = rt.bind([](ProgramId, RegSet& regs) {
    regs[0] += 1;
    set_rc(regs, Status::kOk);
  });
  RegSet regs;
  regs[0] = 41;
  set_op(regs, 1);
  ASSERT_EQ(rt.call(1, ep, regs), Status::kOk);
  EXPECT_EQ(regs[0], 42u);
}

TEST(GlobalPool, UnknownService) {
  GlobalPoolRuntime rt;
  RegSet regs;
  EXPECT_EQ(rt.call(1, 99, regs), Status::kNoSuchEntryPoint);
}

TEST(GlobalPool, ConcurrentCallsAreSafe) {
  GlobalPoolRuntime rt;
  std::atomic<int> served{0};
  const EntryPointId ep = rt.bind([&](ProgramId, RegSet& regs) {
    served.fetch_add(1, std::memory_order_relaxed);
    set_rc(regs, Status::kOk);
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      RegSet regs;
      for (int i = 0; i < 2000; ++i) {
        set_op(regs, 1);
        ASSERT_EQ(rt.call(1, ep, regs), Status::kOk);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(served.load(), 8000);
}

TEST(MsgQueueServer, RoundTrip) {
  MsgQueueServer server(1, [](RegSet& regs) {
    regs[0] *= 3;
    set_rc(regs, Status::kOk);
  });
  RegSet regs;
  regs[0] = 14;
  set_op(regs, 1);
  ASSERT_EQ(server.call(regs), Status::kOk);
  EXPECT_EQ(regs[0], 42u);
  EXPECT_EQ(server.served(), 1u);
}

TEST(MsgQueueServer, ManyClientsManyServers) {
  MsgQueueServer server(2, [](RegSet& regs) {
    regs[1] = regs[0] + 1;
    set_rc(regs, Status::kOk);
  });
  std::vector<std::thread> clients;
  std::atomic<int> bad{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        RegSet regs;
        regs[0] = static_cast<Word>(t * 1000 + i);
        set_op(regs, 1);
        if (server.call(regs) != Status::kOk ||
            regs[1] != regs[0] + 1) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(server.served(), 2000u);
}

TEST(MsgQueueServer, ShutdownDrains) {
  auto server = std::make_unique<MsgQueueServer>(
      1, [](RegSet& regs) { set_rc(regs, Status::kOk); });
  RegSet regs;
  set_op(regs, 1);
  EXPECT_EQ(server->call(regs), Status::kOk);
  server.reset();  // clean join, no hang
}

}  // namespace
}  // namespace hppc::rt
