#include "rt/dispatch.h"

#include <gtest/gtest.h>

namespace hppc::rt {
namespace {

using ppc::RegSet;
using ppc::set_op;
using ppc::set_rc;

TEST(OpDispatcher, RoutesByOpcode) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {}, 700,
      OpDispatcher()
          .on(1,
              [](RtCtx&, RegSet& regs) {
                regs[0] = 0x11;
                set_rc(regs, Status::kOk);
              })
          .on(2,
              [](RtCtx&, RegSet& regs) {
                regs[0] = 0x22;
                set_rc(regs, Status::kOk);
              })
          .handler());

  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);
  EXPECT_EQ(regs[0], 0x11u);
  set_op(regs, 2);
  ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);
  EXPECT_EQ(regs[0], 0x22u);
}

TEST(OpDispatcher, UnknownOpcodeRejected) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {}, 700,
      OpDispatcher()
          .on(1, [](RtCtx&, RegSet& r) { set_rc(r, Status::kOk); })
          .handler());
  RegSet regs;
  set_op(regs, 9);
  EXPECT_EQ(rt.call(slot, 1, ep, regs), Status::kInvalidArgument);
  set_op(regs, 63);
  EXPECT_EQ(rt.call(slot, 1, ep, regs), Status::kInvalidArgument);
}

TEST(OpDispatcher, HandlersSeeContext) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  ProgramId seen = 0;
  const EntryPointId ep = rt.bind(
      {}, 700,
      OpDispatcher()
          .on(1,
              [&](RtCtx& ctx, RegSet& regs) {
                seen = ctx.caller_program();
                ctx.stack()[0] = std::byte{7};  // stack is usable
                set_rc(regs, Status::kOk);
              })
          .handler());
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 99, ep, regs), Status::kOk);
  EXPECT_EQ(seen, 99u);
}

TEST(OpDispatcherDeathTest, DuplicateOpcodeAsserts) {
  OpDispatcher d;
  d.on(1, [](RtCtx&, RegSet&) {});
  EXPECT_DEATH(d.on(1, [](RtCtx&, RegSet&) {}), "already registered");
}

}  // namespace
}  // namespace hppc::rt
