// Host runtime: PPC-pattern semantics on real threads.
#include "rt/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace hppc::rt {
namespace {

using ppc::RegSet;
using ppc::set_op;
using ppc::set_rc;

TEST(RtRuntime, BasicCallRoundTrip) {
  Runtime rt(2);
  const SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind({}, 700, [](RtCtx&, RegSet& regs) {
    for (std::size_t i = 0; i + 1 < kPpcWords; ++i) regs[i] += 1;
    set_rc(regs, Status::kOk);
  });
  RegSet regs;
  for (std::size_t i = 0; i + 1 < kPpcWords; ++i) regs[i] = 100 + i;
  set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);
  for (std::size_t i = 0; i + 1 < kPpcWords; ++i) EXPECT_EQ(regs[i], 101 + i);
}

TEST(RtRuntime, UnknownEntryPoint) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  RegSet regs;
  EXPECT_EQ(rt.call(slot, 1, 999, regs), Status::kNoSuchEntryPoint);
}

TEST(RtRuntime, CallerProgramVisible) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  ProgramId seen = 0;
  const EntryPointId ep = rt.bind({}, 700, [&](RtCtx& ctx, RegSet& regs) {
    seen = ctx.caller_program();
    set_rc(regs, Status::kOk);
  });
  RegSet regs;
  rt.call(slot, 42, ep, regs);
  EXPECT_EQ(seen, 42u);
}

TEST(RtRuntime, WorkerPooledAfterCall) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {}, 700, [](RtCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
  RegSet regs;
  rt.call(slot, 1, ep, regs);
  EXPECT_EQ(rt.pooled_workers(slot, ep), 1u);
  EXPECT_EQ(rt.stats(slot).worker_creations, 1u);
  for (int i = 0; i < 10; ++i) rt.call(slot, 1, ep, regs);
  EXPECT_EQ(rt.stats(slot).worker_creations, 1u);  // reused
}

TEST(RtRuntime, StackBufferProvidedAndRecycled) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  std::byte* seen_a = nullptr;
  std::byte* seen_b = nullptr;
  const EntryPointId a = rt.bind({}, 700, [&](RtCtx& ctx, RegSet& regs) {
    seen_a = ctx.stack().data();
    ctx.stack()[0] = std::byte{42};
    set_rc(regs, Status::kOk);
  });
  const EntryPointId b = rt.bind({}, 701, [&](RtCtx& ctx, RegSet& regs) {
    seen_b = ctx.stack().data();
    set_rc(regs, Status::kOk);
  });
  RegSet regs;
  rt.call(slot, 1, a, regs);
  rt.call(slot, 1, b, regs);
  ASSERT_NE(seen_a, nullptr);
  // Serial stack sharing (§2): the second service reused the first's stack.
  EXPECT_EQ(seen_a, seen_b);
  EXPECT_EQ(rt.stats(slot).cd_creations, 1u);
}

TEST(RtRuntime, HoldCdKeepsPrivateStack) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  RtServiceConfig hold;
  hold.hold_cd = true;
  std::byte* hold_stack = nullptr;
  const EntryPointId h = rt.bind(hold, 700, [&](RtCtx& ctx, RegSet& regs) {
    hold_stack = ctx.stack().data();
    set_rc(regs, Status::kOk);
  });
  std::byte* shared_stack = nullptr;
  const EntryPointId s = rt.bind({}, 701, [&](RtCtx& ctx, RegSet& regs) {
    shared_stack = ctx.stack().data();
    set_rc(regs, Status::kOk);
  });
  RegSet regs;
  rt.call(slot, 1, h, regs);
  rt.call(slot, 1, s, regs);
  rt.call(slot, 1, h, regs);
  EXPECT_NE(hold_stack, shared_stack);  // held stack never shared
}

TEST(RtRuntime, WorkerInitProtocol) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  int init_runs = 0, main_runs = 0;
  RtHandler main_handler = [&](RtCtx&, RegSet& regs) {
    ++main_runs;
    set_rc(regs, Status::kOk);
  };
  const EntryPointId ep =
      rt.bind({}, 700, [&, main_handler](RtCtx& ctx, RegSet& regs) {
        ++init_runs;
        ctx.set_worker_handler(main_handler);
        main_handler(ctx, regs);
      });
  RegSet regs;
  for (int i = 0; i < 5; ++i) rt.call(slot, 1, ep, regs);
  EXPECT_EQ(init_runs, 1);
  EXPECT_EQ(main_runs, 5);
}

TEST(RtRuntime, NestedCalls) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  const EntryPointId inner = rt.bind({}, 700, [](RtCtx&, RegSet& regs) {
    regs[0] *= 2;
    set_rc(regs, Status::kOk);
  });
  const EntryPointId outer =
      rt.bind({}, 701, [inner](RtCtx& ctx, RegSet& regs) {
        RegSet nested;
        nested[0] = regs[0];
        set_op(nested, 1);
        set_rc(regs, ctx.call(inner, nested));
        regs[1] = nested[0];
      });
  RegSet regs;
  regs[0] = 21;
  set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 1, outer, regs), Status::kOk);
  EXPECT_EQ(regs[1], 42u);
}

TEST(RtRuntime, AsyncDeferredUntilPoll) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  int served = 0;
  const EntryPointId ep = rt.bind({}, 700, [&](RtCtx&, RegSet& regs) {
    ++served;
    set_rc(regs, Status::kOk);
  });
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(rt.call_async(slot, 1, ep, regs), Status::kOk);
  EXPECT_EQ(served, 0);
  EXPECT_EQ(rt.poll(slot), 1u);
  EXPECT_EQ(served, 1);
  EXPECT_EQ(rt.stats(slot).async_calls, 1u);
}

TEST(RtRuntime, SoftKillRejectsNewCalls) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {}, 700, [](RtCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);
  ASSERT_EQ(rt.soft_kill(ep), Status::kOk);
  set_op(regs, 1);
  EXPECT_EQ(rt.call(slot, 1, ep, regs), Status::kEntryPointDraining);
}

TEST(RtRuntime, HardKillReclaimsPooledResourcesViaMailbox) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  RtServiceConfig hold;
  hold.hold_cd = true;
  const EntryPointId ep = rt.bind(
      hold, 700, [](RtCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });
  RegSet regs;
  set_op(regs, 1);
  rt.call(slot, 1, ep, regs);
  EXPECT_EQ(rt.pooled_workers(slot, ep), 1u);

  ASSERT_EQ(rt.hard_kill(ep), Status::kOk);
  set_op(regs, 1);
  EXPECT_EQ(rt.call(slot, 1, ep, regs), Status::kNoSuchEntryPoint);
  // The reclamation runs when the owning slot polls, not before.
  EXPECT_EQ(rt.pooled_workers(slot, ep), 1u);
  rt.poll(slot);
  EXPECT_EQ(rt.pooled_workers(slot, ep), 0u);
  EXPECT_EQ(rt.hard_kill(ep), Status::kNoSuchEntryPoint);
}

TEST(RtRuntime, CrossSlotPost) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const SlotId other = 1 - me;
  bool ran = false;
  rt.post(other, [&] { ran = true; });
  EXPECT_FALSE(ran);
  // Only the owner drains its mailbox; simulate the other thread polling.
  std::thread t([&] {
    rt.register_thread();
    rt.poll(other);
  });
  t.join();
  EXPECT_TRUE(ran);
}

TEST(RtRuntime, ConcurrentCallsFromManyThreads) {
  // Stress: N threads, each on its own slot, hammering two services.
  // Per-slot ownership means no data races by construction; this test
  // (run under the normal harness, and meaningful under TSan) checks
  // totals and isolation.
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 5000;
  Runtime rt(kThreads);
  std::atomic<std::uint64_t> served{0};
  const EntryPointId ep_a = rt.bind({}, 700, [&](RtCtx&, RegSet& regs) {
    served.fetch_add(1, std::memory_order_relaxed);
    set_rc(regs, Status::kOk);
  });
  RtServiceConfig hold;
  hold.hold_cd = true;
  const EntryPointId ep_b = rt.bind(hold, 701, [&](RtCtx&, RegSet& regs) {
    served.fetch_add(1, std::memory_order_relaxed);
    set_rc(regs, Status::kOk);
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const SlotId slot = rt.register_thread();
      RegSet regs;
      for (int i = 0; i < kCallsPerThread; ++i) {
        set_op(regs, 1);
        ASSERT_EQ(rt.call(slot, 1, (i & 1) ? ep_a : ep_b, regs), Status::kOk);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(served.load(), std::uint64_t{kThreads} * kCallsPerThread);
  // Each slot created exactly one worker per service: never shared.
  for (SlotId s = 0; s < kThreads; ++s) {
    EXPECT_EQ(rt.stats(s).worker_creations, 2u) << "slot " << s;
    EXPECT_EQ(rt.stats(s).calls, kCallsPerThread);
  }
}

}  // namespace
}  // namespace hppc::rt
