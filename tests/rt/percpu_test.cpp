#include "rt/percpu.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

namespace hppc::rt {
namespace {

TEST(SlotRegistry, SameThreadSameSlot) {
  SlotRegistry reg(4);
  const SlotId a = reg.register_thread();
  const SlotId b = reg.register_thread();
  EXPECT_EQ(a, b);
}

TEST(SlotRegistry, DistinctThreadsDistinctSlots) {
  SlotRegistry reg(8);
  std::vector<SlotId> slots(4, kInvalidSlot);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] { slots[i] = reg.register_thread(); });
  }
  for (auto& t : threads) t.join();
  std::set<SlotId> unique(slots.begin(), slots.end());
  EXPECT_EQ(unique.size(), 4u);
  for (SlotId s : slots) EXPECT_LT(s, 8u);
}

TEST(SlotRegistry, SeparateRegistriesSeparateSlots) {
  SlotRegistry a(2), b(2);
  const SlotId sa = a.register_thread();
  const SlotId sb = b.register_thread();
  EXPECT_EQ(sa, 0u);
  EXPECT_EQ(sb, 0u);  // fresh count per registry, same thread OK
}

TEST(SlotRegistry, ReusedAddressDoesNotResurrectStaleSlot) {
  // Regression: the TLS cache used to be keyed by the registry's address,
  // so a new registry constructed where a destroyed one lived would hand
  // this thread its old slot id. Arrange for this thread's slot in the
  // first registry to be nonzero (another thread takes 0 first) so a stale
  // hit is distinguishable from the correct fresh assignment.
  void* first_addr = nullptr;
  {
    auto reg = std::make_unique<SlotRegistry>(4);
    first_addr = reg.get();
    std::thread([&] { reg->register_thread(); }).join();
    ASSERT_EQ(reg->register_thread(), 1u);
  }
  auto fresh = std::make_unique<SlotRegistry>(4);
  if (static_cast<void*>(fresh.get()) != first_addr) {
    GTEST_SKIP() << "allocator did not reuse the address; bug not reachable";
  }
  EXPECT_EQ(fresh->register_thread(), 0u);
}

TEST(Mailbox, FifoDelivery) {
  Mailbox<int> box;
  for (int i = 0; i < 5; ++i) box.post(i);
  std::vector<int> got;
  box.drain([&](int v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, DrainEmpty) {
  Mailbox<int> box;
  EXPECT_EQ(box.drain([](int) { FAIL(); }), 0u);
}

TEST(Mailbox, ConcurrentProducersSingleConsumer) {
  Mailbox<int> box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) box.post(p * kPerProducer + i);
    });
  }
  std::atomic<bool> stop{false};
  std::size_t consumed = 0;
  std::set<int> seen;
  std::thread consumer([&] {
    while (!stop.load() || !box.empty()) {
      consumed += box.drain([&](int v) { seen.insert(v); });
    }
  });
  for (auto& t : producers) t.join();
  stop.store(true);
  consumer.join();
  EXPECT_EQ(consumed, std::size_t{kProducers} * kPerProducer);
  EXPECT_EQ(seen.size(), std::size_t{kProducers} * kPerProducer);
}

TEST(Mailbox, DestructorFreesUndrained) {
  // Just must not leak/crash (ASan would flag it).
  Mailbox<std::unique_ptr<int>> box;
  box.post(std::make_unique<int>(1));
  box.post(std::make_unique<int>(2));
}

TEST(Mailbox, PerProducerFifoUnderConcurrentDrain) {
  // Drains overlap the posts (the real poll() pattern). Values from one
  // producer must still arrive in that producer's post order, even though
  // the interleaving across producers is arbitrary.
  Mailbox<std::pair<int, int>> box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) box.post({p, i});
    });
  }
  std::array<int, kProducers> next_from{};
  std::size_t total = 0;
  while (total < std::size_t{kProducers} * kPerProducer) {
    const std::size_t n = box.drain([&](std::pair<int, int>&& v) {
      ASSERT_LT(v.first, kProducers);
      EXPECT_EQ(v.second, next_from[v.first]++);
    });
    total += n;
    if (n == 0) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  for (int n : next_from) EXPECT_EQ(n, kPerProducer);
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, DestructorFreesUndrainedAfterConcurrentPosts) {
  // Posts race the destructor's cut-off point but not the destructor
  // itself (join first); whatever landed must be freed. ASan/TSan verify.
  for (int round = 0; round < 50; ++round) {
    auto box = std::make_unique<Mailbox<std::unique_ptr<int>>>();
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < 20; ++i) box->post(std::make_unique<int>(i));
      });
    }
    for (auto& t : producers) t.join();
    box.reset();  // frees every undrained node
  }
}

}  // namespace
}  // namespace hppc::rt
