#include "rt/percpu.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace hppc::rt {
namespace {

TEST(SlotRegistry, SameThreadSameSlot) {
  SlotRegistry reg(4);
  const SlotId a = reg.register_thread();
  const SlotId b = reg.register_thread();
  EXPECT_EQ(a, b);
}

TEST(SlotRegistry, DistinctThreadsDistinctSlots) {
  SlotRegistry reg(8);
  std::vector<SlotId> slots(4, kInvalidSlot);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] { slots[i] = reg.register_thread(); });
  }
  for (auto& t : threads) t.join();
  std::set<SlotId> unique(slots.begin(), slots.end());
  EXPECT_EQ(unique.size(), 4u);
  for (SlotId s : slots) EXPECT_LT(s, 8u);
}

TEST(SlotRegistry, SeparateRegistriesSeparateSlots) {
  SlotRegistry a(2), b(2);
  const SlotId sa = a.register_thread();
  const SlotId sb = b.register_thread();
  EXPECT_EQ(sa, 0u);
  EXPECT_EQ(sb, 0u);  // fresh count per registry, same thread OK
}

TEST(Mailbox, FifoDelivery) {
  Mailbox<int> box;
  for (int i = 0; i < 5; ++i) box.post(i);
  std::vector<int> got;
  box.drain([&](int v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, DrainEmpty) {
  Mailbox<int> box;
  EXPECT_EQ(box.drain([](int) { FAIL(); }), 0u);
}

TEST(Mailbox, ConcurrentProducersSingleConsumer) {
  Mailbox<int> box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) box.post(p * kPerProducer + i);
    });
  }
  std::atomic<bool> stop{false};
  std::size_t consumed = 0;
  std::set<int> seen;
  std::thread consumer([&] {
    while (!stop.load() || !box.empty()) {
      consumed += box.drain([&](int v) { seen.insert(v); });
    }
  });
  for (auto& t : producers) t.join();
  stop.store(true);
  consumer.join();
  EXPECT_EQ(consumed, std::size_t{kProducers} * kPerProducer);
  EXPECT_EQ(seen.size(), std::size_t{kProducers} * kPerProducer);
}

TEST(Mailbox, DestructorFreesUndrained) {
  // Just must not leak/crash (ASan would flag it).
  Mailbox<std::unique_ptr<int>> box;
  box.post(std::make_unique<int>(1));
  box.post(std::make_unique<int>(2));
}

}  // namespace
}  // namespace hppc::rt
