// The xcall layer: the bounded MPSC ring and slot gate in isolation, then
// Runtime::call_remote / call_remote_async end to end — including the
// counter contract the bench asserts (warm cross-slot calls never touch
// the allocating mailbox).
#include "rt/xcall.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <span>
#include <thread>
#include <vector>

#include "fault/failpoints.h"
#include "ppc/regs.h"
#include "rt/runtime.h"

namespace hppc::rt {
namespace {

ppc::RegSet make_regs(Word w0) {
  ppc::RegSet r{};
  r[0] = w0;
  return r;
}

// ---------------------------------------------------------------------------
// XcallRing
// ---------------------------------------------------------------------------

TEST(XcallRing, PostDrainRoundTrip) {
  XcallRing ring;
  EXPECT_FALSE(ring.has_pending());
  ASSERT_TRUE(ring.try_post(/*caller=*/7, /*ep=*/9, make_regs(41), nullptr));
  EXPECT_TRUE(ring.has_pending());
  std::size_t seen = 0;
  const std::size_t n = ring.drain([&](XcallCell& c) {
    EXPECT_EQ(c.caller, 7u);
    EXPECT_EQ(c.ep, 9u);
    EXPECT_EQ(c.regs[0], 41u);
    EXPECT_EQ(c.wait, nullptr);
    ++seen;
  });
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(seen, 1u);
  EXPECT_FALSE(ring.has_pending());
}

TEST(XcallRing, FifoOrderWithinABatch) {
  XcallRing ring;
  for (Word i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.try_post(1, 1, make_regs(i), nullptr));
  }
  Word expect = 0;
  ring.drain([&](XcallCell& c) { EXPECT_EQ(c.regs[0], expect++); });
  EXPECT_EQ(expect, 10u);
}

TEST(XcallRing, FullRingRejectsWithoutBlocking) {
  XcallRing ring;
  for (std::size_t i = 0; i < XcallRing::kCapacity; ++i) {
    ASSERT_TRUE(ring.try_post(1, 1, make_regs(i), nullptr)) << i;
  }
  EXPECT_FALSE(ring.try_post(1, 1, make_regs(999), nullptr));
  // One batch retires everything; capacity is available again.
  EXPECT_EQ(ring.drain([](XcallCell&) {}), XcallRing::kCapacity);
  EXPECT_TRUE(ring.try_post(1, 1, make_regs(0), nullptr));
}

TEST(XcallRing, WrapsAcrossManyGenerations) {
  XcallRing ring;
  Word next = 0;
  for (int round = 0; round < 300; ++round) {
    for (Word i = 0; i < 7; ++i) {
      ASSERT_TRUE(ring.try_post(1, 1, make_regs(next + i), nullptr));
    }
    ring.drain([&](XcallCell& c) { EXPECT_EQ(c.regs[0], next++); });
  }
  EXPECT_EQ(next, 2100u);
}

TEST(XcallRing, ConcurrentProducersKeepPerProducerFifo) {
  XcallRing ring;
  constexpr int kProducers = 4;
  constexpr Word kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (Word i = 0; i < kPerProducer; ++i) {
        // Encode (producer, index); spin until the bounded ring has room.
        while (!ring.try_post(static_cast<ProgramId>(p), 1, make_regs(i),
                              nullptr)) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::array<Word, kProducers> next_from{};
  std::size_t total = 0;
  while (total < std::size_t{kProducers} * kPerProducer) {
    const std::size_t n = ring.drain([&](XcallCell& c) {
      ASSERT_LT(c.caller, kProducers);
      EXPECT_EQ(c.regs[0], next_from[c.caller]++);
    });
    total += n;
    if (n == 0) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  for (Word n : next_from) EXPECT_EQ(n, kPerProducer);
  EXPECT_FALSE(ring.has_pending());
}

// ---------------------------------------------------------------------------
// SlotGate
// ---------------------------------------------------------------------------

TEST(SlotGate, StartsIdleAndStealsOnce) {
  SlotGate gate;
  EXPECT_EQ(gate.state(), SlotGate::kIdle);
  EXPECT_TRUE(gate.try_steal());
  EXPECT_EQ(gate.state(), SlotGate::kStolen);
  EXPECT_FALSE(gate.try_steal());  // only one thief at a time
  gate.release_steal();
  EXPECT_EQ(gate.state(), SlotGate::kIdle);
}

TEST(SlotGate, OwnerBlocksThievesUntilIdle) {
  SlotGate gate;
  gate.claim_at_register();
  EXPECT_EQ(gate.state(), SlotGate::kOwner);
  EXPECT_FALSE(gate.try_steal());
  gate.claim_at_register();  // idempotent re-registration
  EXPECT_EQ(gate.state(), SlotGate::kOwner);
  gate.enter_idle();
  EXPECT_TRUE(gate.try_steal());
  // The owner un-parking must wait the thief out.
  std::atomic<bool> resumed{false};
  std::thread owner([&] {
    gate.exit_idle();
    resumed.store(true);
  });
  std::this_thread::yield();
  EXPECT_FALSE(resumed.load());
  gate.release_steal();
  owner.join();
  EXPECT_TRUE(resumed.load());
  EXPECT_EQ(gate.state(), SlotGate::kOwner);
}

// ---------------------------------------------------------------------------
// Runtime::call_remote / call_remote_async
// ---------------------------------------------------------------------------

/// Binds an adder service: r[1] = r[0] + 1. Returns its entry point.
EntryPointId bind_adder(Runtime& rt) {
  return rt.bind({.name = "adder"}, /*program=*/0,
                 [](RtCtx&, ppc::RegSet& r) {
                   r[1] = r[0] + 1;
                   ppc::set_rc(r, Status::kOk);
                 });
}

TEST(CallRemote, DirectExecutesOnIdleSlot) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  ASSERT_EQ(me, 0u);
  const EntryPointId ep = bind_adder(rt);
  // Slot 1 never registered: its gate is idle, so the call direct-executes
  // on this thread against slot 1's pools.
  ppc::RegSet r = make_regs(10);
  ASSERT_EQ(rt.call_remote(me, /*target=*/1, /*caller=*/1, ep, r),
            Status::kOk);
  EXPECT_EQ(r[1], 11u);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kXcallDirect), 1u);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kCallsRemote), 1u);
  EXPECT_EQ(rt.counters(0).get(obs::Counter::kXcallPosts), 0u);
  // No allocation-path traffic anywhere.
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(CallRemote, SameSlotDegeneratesToLocalCall) {
  Runtime rt(1);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  ppc::RegSet r = make_regs(5);
  ASSERT_EQ(rt.call_remote(me, me, 1, ep, r), Status::kOk);
  EXPECT_EQ(r[1], 6u);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kCallsSync), 1u);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kCallsRemote), 0u);
}

TEST(CallRemote, RingPathWhileOwnerPolls) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  std::atomic<bool> stop{false};
  std::atomic<bool> owner_up{false};
  std::thread owner([&] {
    const SlotId s = rt.register_thread();
    ASSERT_EQ(s, 1u);
    owner_up.store(true, std::memory_order_release);
    // Poll-driven owner: the gate stays kOwner throughout (yield does not
    // park), so the caller cannot steal and must take the ring path.
    while (!stop.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
  });
  while (!owner_up.load(std::memory_order_acquire)) std::this_thread::yield();
  for (Word i = 0; i < 200; ++i) {
    ppc::RegSet r = make_regs(i);
    ASSERT_EQ(rt.call_remote(me, 1, /*caller=*/1, ep, r), Status::kOk);
    ASSERT_EQ(r[1], i + 1);
  }
  stop.store(true, std::memory_order_release);
  owner.join();
  EXPECT_EQ(rt.counters(0).get(obs::Counter::kXcallPosts), 200u);
  EXPECT_GT(rt.counters(1).get(obs::Counter::kXcallBatches), 0u);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kCallsRemote), 200u);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(CallRemote, ServedSlotAnswersAndParksIdle) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  std::atomic<bool> stop{false};
  std::thread server([&] {
    const SlotId s = rt.register_thread();
    rt.serve(s, stop);
  });
  for (Word i = 0; i < 500; ++i) {
    ppc::RegSet r = make_regs(i);
    ASSERT_EQ(rt.call_remote(me, 1, 1, ep, r), Status::kOk);
    ASSERT_EQ(r[1], i + 1);
  }
  stop.store(true, std::memory_order_release);
  server.join();
  const auto& c = rt.counters(1);
  // Every call executed remotely, by direct steal or ring cell.
  EXPECT_EQ(c.get(obs::Counter::kCallsRemote), 500u);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(CallRemote, DrainingServiceReportsStatus) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  ASSERT_EQ(rt.soft_kill(ep), Status::kOk);
  ppc::RegSet r = make_regs(1);
  EXPECT_EQ(rt.call_remote(me, 1, 1, ep, r), Status::kEntryPointDraining);
  EXPECT_EQ(rt.call_remote(me, 1, 1, kInvalidEntryPoint, r),
            Status::kNoSuchEntryPoint);
}

TEST(CallRemoteAsync, ExecutedAtTargetPoll) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  std::atomic<int> hits{0};
  const EntryPointId ep =
      rt.bind({.name = "tally"}, 0, [&](RtCtx&, ppc::RegSet& r) {
        hits.fetch_add(static_cast<int>(r[0]), std::memory_order_relaxed);
        ppc::set_rc(r, Status::kOk);
      });
  for (Word i = 1; i <= 8; ++i) {
    ASSERT_EQ(rt.call_remote_async(me, 1, 1, ep, make_regs(i)), Status::kOk);
  }
  EXPECT_EQ(hits.load(), 0);  // nothing ran yet: cells are parked in the ring
  std::thread owner([&] {
    const SlotId s = rt.register_thread();
    EXPECT_GE(rt.poll(s), 8u);
  });
  owner.join();
  EXPECT_EQ(hits.load(), 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kCallsRemote), 8u);
}

TEST(CallRemoteAsync, RingOverflowFallsBackToMailbox) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  std::atomic<int> hits{0};
  const EntryPointId ep =
      rt.bind({.name = "tally"}, 0, [&](RtCtx&, ppc::RegSet& r) {
        hits.fetch_add(1, std::memory_order_relaxed);
        ppc::set_rc(r, Status::kOk);
      });
  // Hold slot 1's gate as its registered owner (in a thread that is not
  // draining), so async posts park in the ring until it fills.
  std::atomic<bool> filled{false};
  std::atomic<bool> stop{false};
  std::thread owner([&] {
    const SlotId s = rt.register_thread();
    while (!filled.load(std::memory_order_acquire)) std::this_thread::yield();
    while (!stop.load(std::memory_order_acquire)) rt.poll(s);
  });
  const std::size_t n = XcallRing::kCapacity + 8;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(rt.call_remote_async(me, 1, 1, ep, make_regs(i)), Status::kOk);
  }
  // The overflow beyond kCapacity went through the allocating mailbox.
  EXPECT_EQ(rt.counters(0).get(obs::Counter::kXcallRingFull), 8u);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 8u);
  filled.store(true, std::memory_order_release);
  while (hits.load(std::memory_order_relaxed) < static_cast<int>(n)) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  owner.join();
  EXPECT_EQ(hits.load(), static_cast<int>(n));
}

TEST(CallRemote, WarmCrossSlotCallsNeverAllocate) {
  // Single-threaded on purpose (the snapshot reads must not race the
  // target's counter stores): the target slot is never registered, so
  // every call takes the direct-execution path on this thread. The ring
  // path's no-alloc warm phase is asserted by the xcall_latency bench.
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  // Warm up: worker + CD creation on the target slot happen here.
  for (int i = 0; i < 32; ++i) {
    ppc::RegSet r = make_regs(i);
    ASSERT_EQ(rt.call_remote(me, 1, 1, ep, r), Status::kOk);
  }
  const auto before = rt.snapshot();
  for (Word i = 0; i < 1000; ++i) {
    ppc::RegSet r = make_regs(i);
    ASSERT_EQ(rt.call_remote(me, 1, 1, ep, r), Status::kOk);
    ASSERT_EQ(r[1], i + 1);
  }
  const auto delta = rt.snapshot().delta(before);
  // The invariant the whole layer exists for: a warm cross-slot call takes
  // no locks and performs zero heap allocations, on either side.
  EXPECT_EQ(delta.get(obs::Counter::kMailboxAllocs), 0u);
  EXPECT_EQ(delta.get(obs::Counter::kMailboxPosts), 0u);
  EXPECT_EQ(delta.get(obs::Counter::kLocksTaken), 0u);
  EXPECT_EQ(delta.get(obs::Counter::kWorkersCreated), 0u);
  EXPECT_EQ(delta.get(obs::Counter::kCdsCreated), 0u);
  EXPECT_EQ(delta.get(obs::Counter::kCallsRemote), 1000u);
  EXPECT_EQ(delta.get(obs::Counter::kXcallDirect), 1000u);
}

TEST(CallRemote, MultiCallerStress) {
  // TSan's bread and butter: several caller threads hammer one served slot
  // with sync calls while async posts fly in, all through gate handoffs.
  Runtime rt(5);
  const EntryPointId ep = [&] {
    Runtime& r = rt;
    return r.bind({.name = "adder"}, 0, [](RtCtx&, ppc::RegSet& regs) {
      regs[1] = regs[0] + 1;
      ppc::set_rc(regs, Status::kOk);
    });
  }();
  std::atomic<bool> stop{false};
  std::atomic<bool> server_up{false};
  std::thread server([&] {
    const SlotId s = rt.register_thread();
    EXPECT_EQ(s, 0u);
    server_up.store(true, std::memory_order_release);
    rt.serve(s, stop);
  });
  while (!server_up.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  constexpr int kCallers = 4;
  constexpr Word kCallsEach = 500;
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      const SlotId my = rt.register_thread();
      for (Word i = 0; i < kCallsEach; ++i) {
        ppc::RegSet r = make_regs(i);
        if (rt.call_remote(my, 0, /*caller=*/my, ep, r) != Status::kOk ||
            r[1] != i + 1) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 64 == 0) {
          rt.call_remote_async(my, 0, my, ep, make_regs(i));
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  stop.store(true, std::memory_order_release);
  server.join();
  EXPECT_EQ(failures.load(), 0);
  // Every sync call ran exactly once somewhere on slot 0's state.
  EXPECT_GE(rt.counters(0).get(obs::Counter::kCallsRemote),
            std::uint64_t{kCallers} * kCallsEach);
}

// ---------------------------------------------------------------------------
// Robustness: ring-full accounting, deadlines, backoff, shedding
// ---------------------------------------------------------------------------

// Pin slot 1's gate to kOwner without ever draining: posts park in the
// ring until it fills, making the overflow branches deterministic.
class StuckOwner {
 public:
  explicit StuckOwner(Runtime& rt) {
    thread_ = std::thread([this, &rt] {
      const SlotId s = rt.register_thread();
      EXPECT_EQ(s, 1u);
      up_.store(true, std::memory_order_release);
      while (!release_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      // Drain everything that parked while we were stuck, so abandoned
      // cells get acked and the runtime quiesces before destruction; then
      // park the gate so later remote calls can direct-execute instead of
      // posting into a ring nobody will ever drain again.
      while (rt.poll(s) > 0) {
      }
      rt.enter_idle(s);
    });
    while (!up_.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  void release_and_join() {
    release_.store(true, std::memory_order_release);
    thread_.join();
  }

 private:
  std::thread thread_;
  std::atomic<bool> up_{false};
  std::atomic<bool> release_{false};
};

TEST(CallRemote, SyncRingFullBranchesBookTheCounter) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  StuckOwner owner(rt);

  // Fill the ring with async posts (counted 0 times: they all fit) ...
  for (std::size_t i = 0; i < XcallRing::kCapacity; ++i) {
    ASSERT_EQ(rt.call_remote_async(me, 1, 1, ep, make_regs(i)), Status::kOk);
  }
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kXcallRingFull), 0u);

  // ... then hit the full ring on every post variant. Async: overflow to
  // the mailbox, one ring_full + one alloc each. Sync fail-fast: ring_full
  // booked even though the call never waits.
  ASSERT_EQ(rt.call_remote_async(me, 1, 1, ep, make_regs(0)), Status::kOk);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kXcallRingFull), 1u);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 1u);

  CallOptions fail_fast;
  fail_fast.retry = RetryPolicy::kFailFast;
  ppc::RegSet r = make_regs(1);
  EXPECT_EQ(rt.call_remote(me, 1, 1, ep, r, fail_fast), Status::kOverloaded);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kXcallRingFull), 2u);

  // Bounded backoff: books ring_full once, retries, burns backoff cycles,
  // then gives up — the owner never drains, so the ring stays full.
  CallOptions backoff;
  backoff.retry = RetryPolicy::kBackoff;
  backoff.backoff_rounds = 4;
  r = make_regs(1);
  EXPECT_EQ(rt.call_remote(me, 1, 1, ep, r, backoff), Status::kOverloaded);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kXcallRingFull), 3u);
  EXPECT_GE(rt.counters(me).get(obs::Counter::kRetries), 4u);
  EXPECT_GT(rt.counters(me).get(obs::Counter::kBackoffCycles), 0u);

  owner.release_and_join();
}

TEST(CallRemote, DeadlineExceededOnStuckOwner) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  StuckOwner owner(rt);

  CallOptions opts;
  opts.deadline_cycles = 200'000;  // expires long before the owner wakes
  ppc::RegSet r = make_regs(1);
  const Status s = rt.call_remote(me, 1, 1, ep, r, opts);
  EXPECT_EQ(s, Status::kDeadlineExceeded);
  EXPECT_EQ(ppc::rc_of(r), Status::kDeadlineExceeded);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kDeadlineExceeded), 1u);

  // The abandoned cell is still in the ring; when the owner finally
  // drains, it must be acked and skipped — then fresh calls work.
  owner.release_and_join();
  r = make_regs(5);
  EXPECT_EQ(rt.call_remote(me, 1, 1, ep, r), Status::kOk);
  EXPECT_EQ(r[1], 6u);
  // Exactly one remote call executed: the abandoned one was skipped.
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kCallsRemote), 1u);
}

TEST(CallRemote, DeadlineCallCompletesNormallyOnLiveServer) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  std::atomic<bool> stop{false};
  std::thread server([&] {
    const SlotId s = rt.register_thread();
    rt.serve(s, stop);
  });
  CallOptions opts;
  opts.deadline_cycles = 500'000'000;  // effectively infinite
  for (Word i = 0; i < 200; ++i) {
    ppc::RegSet r = make_regs(i);
    ASSERT_EQ(rt.call_remote(me, 1, 1, ep, r, opts), Status::kOk);
    ASSERT_EQ(r[1], i + 1);  // the reply round-trips the pooled block
  }
  stop.store(true, std::memory_order_release);
  server.join();
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kDeadlineExceeded), 0u);
  // The pooled-wait path is still allocation-free once warm: one block
  // serves all 200 calls.
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(CallRemote, ShedsAtWatermark) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  StuckOwner owner(rt);
  rt.set_shed_watermark(8);

  // Fill to the watermark with async posts, then watch both variants shed.
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_EQ(rt.call_remote_async(me, 1, 1, ep, make_regs(i)), Status::kOk);
  }
  EXPECT_EQ(rt.call_remote_async(me, 1, 1, ep, make_regs(9)),
            Status::kOverloaded);
  ppc::RegSet r = make_regs(9);
  EXPECT_EQ(rt.call_remote(me, 1, 1, ep, r), Status::kOverloaded);
  EXPECT_EQ(ppc::rc_of(r), Status::kOverloaded);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kCallsShed), 2u);
  // Shed calls never entered the queue and never touched the mailbox.
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);

  // Draining the backlog reopens admission.
  rt.set_shed_watermark(0);
  owner.release_and_join();
  rt.set_shed_watermark(8);
  r = make_regs(3);
  EXPECT_EQ(rt.call_remote(me, 1, 1, ep, r), Status::kOk);
  EXPECT_EQ(r[1], 4u);
}

// ---------------------------------------------------------------------------
// Batched submission: try_post_many at ring level, call_remote_batch above
// ---------------------------------------------------------------------------

TEST(XcallRing, BatchPostPublishesContiguousRunInOrder) {
  XcallRing ring;
  std::array<ppc::RegSet, 10> regs{};
  for (Word i = 0; i < regs.size(); ++i) regs[i][0] = 100 + i;
  ASSERT_EQ(ring.try_post_many(/*caller=*/3, /*ep=*/7, regs.data(),
                               /*waits=*/nullptr, regs.size()),
            regs.size());
  Word expect = 100;
  const std::size_t n = ring.drain([&](XcallCell& c) {
    EXPECT_EQ(c.caller, 3u);
    EXPECT_EQ(c.ep, 7u);
    EXPECT_EQ(c.wait, nullptr);
    EXPECT_EQ(c.regs[0], expect++);
  });
  EXPECT_EQ(n, regs.size());
  EXPECT_FALSE(ring.has_pending());
}

TEST(XcallRing, BatchSpansRingWrap) {
  XcallRing ring;
  // Advance both cursors to 60 so a 16-cell batch claims [60, 76): the run
  // crosses the index wrap, where "contiguous" means contiguous positions,
  // not contiguous array slots.
  for (Word i = 0; i < 60; ++i) {
    ASSERT_TRUE(ring.try_post(1, 1, make_regs(i), nullptr));
  }
  ring.drain([](XcallCell&) {});
  std::array<ppc::RegSet, 16> regs{};
  for (Word i = 0; i < regs.size(); ++i) regs[i][0] = i;
  ASSERT_EQ(ring.try_post_many(1, 1, regs.data(), nullptr, regs.size()),
            regs.size());
  Word expect = 0;
  EXPECT_EQ(ring.drain([&](XcallCell& c) { EXPECT_EQ(c.regs[0], expect++); }),
            regs.size());
  EXPECT_EQ(expect, 16u);
}

TEST(XcallRing, BatchClaimHalvesNearFullAndReturnsZeroWhenFull) {
  XcallRing ring;
  // 59 occupied, 5 free: a 16-run fails its last-cell check, so does 8;
  // 4 fits. The halving never claims cells it cannot publish.
  for (std::size_t i = 0; i < 59; ++i) {
    ASSERT_TRUE(ring.try_post(1, 1, make_regs(i), nullptr));
  }
  std::array<ppc::RegSet, 16> regs{};
  EXPECT_EQ(ring.try_post_many(1, 1, regs.data(), nullptr, regs.size()), 4u);
  EXPECT_EQ(ring.try_post_many(1, 1, regs.data(), nullptr, regs.size()), 1u);
  EXPECT_EQ(ring.try_post_many(1, 1, regs.data(), nullptr, regs.size()), 0u);
  EXPECT_EQ(ring.drain([](XcallCell&) {}), XcallRing::kCapacity);
}

TEST(XcallRing, ConcurrentBatchAndSinglePostsKeepPerProducerFifo) {
  // Two vectored producers race two single-cell producers on one ring; the
  // consumer must still observe every producer's cells in that producer's
  // submission order (batch runs are claimed atomically, so a run can never
  // interleave with itself). TSan sweeps the relaxed-publish protocol here.
  XcallRing ring;
  constexpr Word kPerProducer = 4000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {  // batch producers
    producers.emplace_back([&, p] {
      std::array<ppc::RegSet, 8> regs{};
      Word next = 0;
      while (next < kPerProducer) {
        const std::size_t want =
            std::min<std::size_t>(regs.size(), kPerProducer - next);
        for (std::size_t i = 0; i < want; ++i) regs[i][0] = next + i;
        const std::size_t posted = ring.try_post_many(
            static_cast<ProgramId>(p), 1, regs.data(), nullptr, want);
        next += posted;
        if (posted == 0) std::this_thread::yield();
      }
    });
  }
  for (int p = 2; p < 4; ++p) {  // single-cell producers
    producers.emplace_back([&, p] {
      for (Word i = 0; i < kPerProducer; ++i) {
        while (!ring.try_post(static_cast<ProgramId>(p), 1, make_regs(i),
                              nullptr)) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::array<Word, 4> next_from{};
  std::size_t total = 0;
  while (total < 4 * kPerProducer) {
    const std::size_t n = ring.drain([&](XcallCell& c) {
      ASSERT_LT(c.caller, 4u);
      EXPECT_EQ(c.regs[0], next_from[c.caller]++);
    });
    total += n;
    if (n == 0) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  for (Word n : next_from) EXPECT_EQ(n, kPerProducer);
}

TEST(CallRemoteBatch, DirectExecutesWholeBatchOnIdleSlot) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  std::array<RegSet, 8> batch{};
  for (Word i = 0; i < batch.size(); ++i) batch[i][0] = i;
  ASSERT_EQ(rt.call_remote_batch(me, 1, /*caller=*/1, ep, batch), Status::kOk);
  for (Word i = 0; i < batch.size(); ++i) EXPECT_EQ(batch[i][1], i + 1);
  // One gate steal covered the whole batch: no ring traffic at all.
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kXcallDirect), 8u);
  EXPECT_EQ(rt.counters(0).get(obs::Counter::kXcallPosts), 0u);
  EXPECT_EQ(rt.counters(0).get(obs::Counter::kXcallBatchPosts), 0u);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(CallRemoteBatch, SameSlotDegeneratesToLocalCalls) {
  Runtime rt(1);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  std::array<RegSet, 4> batch{};
  for (Word i = 0; i < batch.size(); ++i) batch[i][0] = 10 + i;
  ASSERT_EQ(rt.call_remote_batch(me, me, 1, ep, batch), Status::kOk);
  for (Word i = 0; i < batch.size(); ++i) EXPECT_EQ(batch[i][1], 11 + i);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kCallsSync), 4u);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kCallsRemote), 0u);
}

TEST(CallRemoteBatch, ScreensDeadServiceOncePerBatch) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  ASSERT_EQ(rt.soft_kill(ep), Status::kOk);
  std::array<RegSet, 3> batch{};
  EXPECT_EQ(rt.call_remote_batch(me, 1, 1, ep, batch),
            Status::kEntryPointDraining);
  for (const RegSet& r : batch) {
    EXPECT_EQ(ppc::rc_of(r), Status::kEntryPointDraining);
  }
  EXPECT_EQ(rt.call_remote_batch(me, 1, 1, kInvalidEntryPoint, batch),
            Status::kNoSuchEntryPoint);
}

TEST(CallRemoteBatch, RingPathChunksLargeBatchAcrossDoorbells) {
  // A batch bigger than the ring must be split into at least two vectored
  // posts (two doorbells), with every reply landing in its own RegSet.
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  std::atomic<bool> stop{false};
  std::atomic<bool> owner_up{false};
  std::thread owner([&] {
    const SlotId s = rt.register_thread();
    owner_up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
  });
  while (!owner_up.load(std::memory_order_acquire)) std::this_thread::yield();
  constexpr std::size_t kBatch = XcallRing::kCapacity + 36;
  std::vector<RegSet> batch(kBatch);
  for (Word i = 0; i < kBatch; ++i) batch[i][0] = i;
  ASSERT_EQ(rt.call_remote_batch(me, 1, 1, ep,
                                 std::span<RegSet>(batch.data(), kBatch)),
            Status::kOk);
  stop.store(true, std::memory_order_release);
  owner.join();
  for (Word i = 0; i < kBatch; ++i) ASSERT_EQ(batch[i][1], i + 1);
  const auto& c = rt.counters(0);
  EXPECT_EQ(c.get(obs::Counter::kXcallPosts), kBatch);
  EXPECT_GE(c.get(obs::Counter::kXcallBatchPosts), 2u);
  EXPECT_EQ(c.get(obs::Counter::kXcallCellsPerBatch), kBatch);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kCallsRemote), kBatch);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kXcallDirect), 0u);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(CallRemoteBatch, WarmBatchesTakeNoLocksAndNeverAllocate) {
  // The acceptance invariant for the whole feature: a warm batched post
  // cycle touches no lock and allocates nothing. The owner thread is live
  // here, so only this thread's slot block and the (atomic) shared block
  // may be read — both are race-free while the owner keeps polling.
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  std::atomic<bool> stop{false};
  std::atomic<bool> owner_up{false};
  std::thread owner([&] {
    const SlotId s = rt.register_thread();
    owner_up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
  });
  while (!owner_up.load(std::memory_order_acquire)) std::this_thread::yield();
  std::array<RegSet, 16> batch{};
  auto run_batch = [&] {
    for (Word i = 0; i < batch.size(); ++i) batch[i][0] = i;
    ASSERT_EQ(rt.call_remote_batch(me, 1, 1, ep, batch), Status::kOk);
  };
  for (int warm = 0; warm < 4; ++warm) run_batch();
  const auto before_me = rt.slot_snapshot(me);
  const std::uint64_t before_allocs =
      rt.shared_counters().get(obs::Counter::kMailboxAllocs);
  const std::uint64_t before_locks =
      rt.shared_counters().get(obs::Counter::kLocksTaken);
  constexpr std::uint64_t kRounds = 64;
  for (std::uint64_t r = 0; r < kRounds; ++r) run_batch();
  const auto delta = rt.slot_snapshot(me).delta(before_me);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs),
            before_allocs);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kLocksTaken), before_locks);
  EXPECT_EQ(delta.get(obs::Counter::kLocksTaken), 0u);
  // Every warm batch is one claim + one doorbell: 16 cells per vectored
  // post, no ring-full retries anywhere.
  EXPECT_EQ(delta.get(obs::Counter::kXcallBatchPosts), kRounds);
  EXPECT_EQ(delta.get(obs::Counter::kXcallCellsPerBatch), kRounds * 16);
  EXPECT_EQ(delta.get(obs::Counter::kXcallPosts), kRounds * 16);
  EXPECT_EQ(delta.get(obs::Counter::kXcallRingFull), 0u);
  stop.store(true, std::memory_order_release);
  owner.join();
}

TEST(CallRemoteBatch, DeadlineExpiresOnStuckOwnerAndBlocksAreReaped) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  StuckOwner owner(rt);

  CallOptions opts;
  opts.deadline_cycles = 200'000;
  std::array<RegSet, 4> batch{};
  for (Word i = 0; i < batch.size(); ++i) batch[i][0] = i;
  EXPECT_EQ(rt.call_remote_batch(me, 1, 1, ep, batch, opts),
            Status::kDeadlineExceeded);
  for (const RegSet& r : batch) {
    EXPECT_EQ(ppc::rc_of(r), Status::kDeadlineExceeded);
  }
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kDeadlineExceeded), 4u);
  EXPECT_EQ(rt.counters(me).get(obs::Counter::kXcallBatchPosts), 1u);

  // The four abandoned pooled blocks ride the zombie list until the owner's
  // drain acks them; after that the teardown sweep must reap all four.
  owner.release_and_join();
  EXPECT_EQ(rt.shutdown(), 4u);
  EXPECT_EQ(rt.shutdown(), 0u);  // idempotent
}

// ---------------------------------------------------------------------------
// Ready-mask scheduling, async cell deadlines, teardown sweep, park/kick
// ---------------------------------------------------------------------------

TEST(ReadyMask, ManyProducersOnePollingConsumerLoseNothing) {
  // Four producers set doorbell bits while the consumer batch-clears them:
  // the set-vs-clear race is benign by design (re-arm + periodic full scan),
  // so every posted call must execute exactly once. TSan target.
  Runtime rt(5);
  std::atomic<Word> hits{0};
  const EntryPointId ep =
      rt.bind({.name = "tally"}, 0, [&](RtCtx&, ppc::RegSet& r) {
        hits.fetch_add(r[0], std::memory_order_relaxed);
        ppc::set_rc(r, Status::kOk);
      });
  std::atomic<bool> stop{false};
  std::atomic<bool> owner_up{false};
  std::thread owner([&] {
    const SlotId s = rt.register_thread();
    EXPECT_EQ(s, 0u);
    owner_up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
  });
  while (!owner_up.load(std::memory_order_acquire)) std::this_thread::yield();
  constexpr Word kEach = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      const SlotId my = rt.register_thread();
      for (Word i = 0; i < kEach; ++i) {
        ASSERT_EQ(rt.call_remote_async(my, 0, my, ep, make_regs(1)),
                  Status::kOk);
      }
    });
  }
  for (auto& t : producers) t.join();
  while (hits.load(std::memory_order_relaxed) < 4 * kEach) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  owner.join();
  EXPECT_EQ(hits.load(), 4 * kEach);
  EXPECT_EQ(rt.counters(0).get(obs::Counter::kCallsRemote), 4 * kEach);
}

TEST(CallRemoteAsync, ExpiredDeadlineCellIsDroppedAtDrain) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  std::atomic<int> hits{0};
  const EntryPointId ep =
      rt.bind({.name = "tally"}, 0, [&](RtCtx&, ppc::RegSet& r) {
        hits.fetch_add(1, std::memory_order_relaxed);
        ppc::set_rc(r, Status::kOk);
      });
  StuckOwner owner(rt);
  CallOptions opts;
  opts.deadline_cycles = 100'000;  // expires long before the owner drains
  ASSERT_EQ(rt.call_remote_async(me, 1, 1, ep, make_regs(1), opts),
            Status::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  owner.release_and_join();  // drain reaches the cell after its deadline
  EXPECT_EQ(hits.load(), 0);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kDeadlineExceeded), 1u);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kCallsRemote), 0u);
}

TEST(Shutdown, ReapsZombieWaitsFromPermanentlyStuckRing) {
  // The regression the sweep exists for: a ring whose owner died holding
  // the gate (hard-killed, never drains again) strands the abandoned
  // block — unreachable by the normal ack path forever. shutdown() must
  // reclaim it anyway, and its pool assert must hold.
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  std::thread dead_owner([&] {
    const SlotId s = rt.register_thread();
    EXPECT_EQ(s, 1u);
    // Exit still holding kOwner: the slot is permanently stuck.
  });
  dead_owner.join();
  CallOptions opts;
  opts.deadline_cycles = 200'000;
  ppc::RegSet r = make_regs(1);
  EXPECT_EQ(rt.call_remote(me, 1, 1, ep, r, opts), Status::kDeadlineExceeded);
  // The abandoned block is a zombie nobody will ever ack.
  EXPECT_EQ(rt.shutdown(), 1u);
  EXPECT_EQ(rt.shutdown(), 0u);
}

#if defined(HPPC_FAULT_INJECTION) && HPPC_FAULT_INJECTION
TEST(CallRemote, ForcedParkIsKickedByCompletingServer) {
  // "rt.xcall.park.now" collapses the yield phase, so every ring-path wait
  // goes straight to the park CAS; the owner's drain must then observe the
  // parked bit and kick the waiter — the test hangs if the kick is lost.
  ASSERT_TRUE(fault::arm("rt.xcall.park.now", "always"));
  {
    Runtime rt(2);
    const SlotId me = rt.register_thread();
    const EntryPointId ep = bind_adder(rt);
    std::atomic<bool> stop{false};
    std::atomic<bool> owner_up{false};
    std::thread owner([&] {
      const SlotId s = rt.register_thread();
      owner_up.store(true, std::memory_order_release);
      while (!stop.load(std::memory_order_acquire)) {
        if (rt.poll(s) == 0) std::this_thread::yield();
      }
    });
    while (!owner_up.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    for (Word i = 0; i < 32; ++i) {
      ppc::RegSet r = make_regs(i);
      ASSERT_EQ(rt.call_remote(me, 1, 1, ep, r), Status::kOk);
      ASSERT_EQ(r[1], i + 1);
    }
    stop.store(true, std::memory_order_release);
    owner.join();
    EXPECT_GE(rt.counters(0).get(obs::Counter::kWaiterParks), 1u);
    EXPECT_GE(rt.counters(1).get(obs::Counter::kWaiterKicks), 1u);
    // A kick only ever answers a park.
    EXPECT_LE(rt.counters(1).get(obs::Counter::kWaiterKicks),
              rt.counters(0).get(obs::Counter::kWaiterParks));
  }
  fault::disarm("rt.xcall.park.now");
}
#endif  // HPPC_FAULT_INJECTION

TEST(CallRemote, HardKillWhileCellParkedAbortsInFlight) {
  Runtime rt(3);
  const SlotId me = rt.register_thread();
  const EntryPointId ep = bind_adder(rt);
  StuckOwner owner(rt);

  // Park a sync call's cell in the stuck owner's ring, then hard-kill the
  // service before the drain: §4.5.2 demands the in-flight call abort.
  std::atomic<Status> result{Status::kOk};
  std::thread caller([&] {
    const SlotId s = rt.register_thread();
    ppc::RegSet r = make_regs(1);
    result.store(rt.call_remote(s, 1, 2, ep, r), std::memory_order_release);
  });
  // Deterministic ordering: the kill happens only once the cell is visibly
  // parked (atomic ring-cursor reads — no race with the caller's stores),
  // which also means the caller passed its pre-screen while alive.
  while (rt.xcall_depth(1) == 0) std::this_thread::yield();
  ASSERT_EQ(rt.hard_kill(ep), Status::kOk);
  owner.release_and_join();  // drain: re-resolve fails -> kCallAborted
  caller.join();
  EXPECT_EQ(result.load(), Status::kCallAborted);
}

}  // namespace
}  // namespace hppc::rt
