// The Figure-4 frame ABI: op-word packing, the 8-word register contract,
// the scatter/gather spill path for >8-word payloads, the legacy shim, and
// the cross-slot lanes (direct steal, ring cell, batch). Also the frame
// path's counter contract: frame calls book calls_frame and never touch
// the typed path's worker/CD machinery.
#include "rt/frame_abi.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "rt/runtime.h"
#include "rt/xcall.h"
#include "rt/bulk_desc.h"

namespace hppc::rt {
namespace {

// ---------------------------------------------------------------------------
// Op-word packing
// ---------------------------------------------------------------------------

TEST(FrameOpWord, PackUnpackRoundTrip) {
  const FrameWord op = frame_op(/*service=*/513, /*opcode=*/0xBEEF,
                                /*flags=*/0x5A);
  EXPECT_EQ(frame_service_of(op), 513u);
  EXPECT_EQ(frame_opcode_of(op), 0xBEEFu);
  EXPECT_EQ(frame_flags_of(op), 0x5Au);
  EXPECT_EQ(frame_rc_of(op), Status::kOk);  // rc byte starts 0
}

TEST(FrameOpWord, LowHalfIsTheLegacyOpflagsWord) {
  // The shim contract: bits [31:0] are bit-for-bit ppc::op_flags.
  const FrameWord op = frame_op(7, 0x1234, 0x9C);
  EXPECT_EQ(frame_opflags_of(op), ppc::op_flags(0x1234, 0x9C));
}

TEST(FrameOpWord, WithRcReplacesOnlyTheRcByte) {
  FrameWord op = frame_op(3, 42, 0x80);
  op = frame_with_rc(op, Status::kOverloaded);
  EXPECT_EQ(frame_service_of(op), 3u);
  EXPECT_EQ(frame_opcode_of(op), 42u);
  EXPECT_EQ(frame_flags_of(op), 0x80u);
  EXPECT_EQ(frame_rc_of(op), Status::kOverloaded);
  op = frame_with_rc(op, Status::kOk);
  EXPECT_EQ(frame_rc_of(op), Status::kOk);
}

TEST(FrameOpWord, WithFlagsReplacesOnlyTheFlagsByte) {
  FrameWord op = frame_op(9, 11, 0x01);
  op = frame_with_rc(op, Status::kInvalidArgument);
  op = frame_with_flags(op, 0xF0);
  EXPECT_EQ(frame_flags_of(op), 0xF0u);
  EXPECT_EQ(frame_opcode_of(op), 11u);
  EXPECT_EQ(frame_rc_of(op), Status::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Cell inlining
// ---------------------------------------------------------------------------

TEST(FrameCell, FrameInlinesInOneCellAndRoundTrips) {
  XcallRing ring;
  CallFrame f = make_frame(/*service=*/5, /*opcode=*/77);
  for (std::size_t i = 0; i < kPpcWords; ++i) {
    f.w[i] = static_cast<Word>(1000 + i);
  }
  ASSERT_TRUE(ring.try_post_frame(/*caller=*/3, f, nullptr));
  std::size_t seen = 0;
  ring.drain([&](XcallCell& c) {
    ASSERT_TRUE(cell_is_frame(c));
    const CallFrame out = cell_frame(c);
    EXPECT_EQ(out, f);  // all 8 words + the op word survived the cell
    EXPECT_EQ(c.caller, 3u);
    ++seen;
  });
  EXPECT_EQ(seen, 1u);
}

TEST(FrameCell, LegacyCellsAreNotFrames) {
  XcallRing ring;
  ASSERT_TRUE(ring.try_post(1, /*ep=*/9, ppc::RegSet{}, nullptr));
  ring.drain([&](XcallCell& c) { EXPECT_FALSE(cell_is_frame(c)); });
}

// ---------------------------------------------------------------------------
// Local calls: the 8-word contract
// ---------------------------------------------------------------------------

struct Accumulator {
  std::uint64_t calls = 0;

  static Status echo_inc(void* self, FrameCtx&, CallFrame& f) {
    ++static_cast<Accumulator*>(self)->calls;
    for (std::size_t i = 0; i < kPpcWords; ++i) f.w[i] += 1;
    return Status::kOk;
  }
};

TEST(FrameCall, EightWordExactFit) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  Accumulator acc;
  const FrameServiceId svc =
      rt.bind_frame(/*program=*/0, &Accumulator::echo_inc, &acc);
  CallFrame f = make_frame(svc, /*opcode=*/1);
  for (std::size_t i = 0; i < kPpcWords; ++i) {
    f.w[i] = static_cast<Word>(10 * i);
  }
  ASSERT_EQ(rt.call_frame(slot, /*caller=*/1, f), Status::kOk);
  // Unlike the legacy RegSet (which spends regs[7] on op|flags|rc), all 8
  // payload words are the application's, in both directions.
  for (std::size_t i = 0; i < kPpcWords; ++i) {
    EXPECT_EQ(f.w[i], static_cast<Word>(10 * i + 1));
  }
  EXPECT_EQ(frame_rc_of(f.op), Status::kOk);
  EXPECT_EQ(acc.calls, 1u);
}

TEST(FrameCall, RcLandsInTheOpWord) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  const FrameServiceId svc = rt.bind_frame(
      0,
      [](void*, FrameCtx&, CallFrame&) { return Status::kInvalidArgument; },
      nullptr);
  CallFrame f = make_frame(svc, 1);
  EXPECT_EQ(rt.call_frame(slot, 1, f), Status::kInvalidArgument);
  EXPECT_EQ(frame_rc_of(f.op), Status::kInvalidArgument);
}

TEST(FrameCall, UnboundServiceFails) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  CallFrame f = make_frame(/*service=*/200, 1);
  EXPECT_EQ(rt.call_frame(slot, 1, f), Status::kNoSuchEntryPoint);
  EXPECT_EQ(frame_rc_of(f.op), Status::kNoSuchEntryPoint);
}

TEST(FrameCall, UnbindStopsCalls) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  Accumulator acc;
  const FrameServiceId svc =
      rt.bind_frame(0, &Accumulator::echo_inc, &acc);
  CallFrame f = make_frame(svc, 1);
  ASSERT_EQ(rt.call_frame(slot, 1, f), Status::kOk);
  ASSERT_EQ(rt.unbind_frame(svc), Status::kOk);
  EXPECT_EQ(rt.unbind_frame(svc), Status::kNoSuchEntryPoint);  // idempotent
  EXPECT_EQ(rt.call_frame(slot, 1, f), Status::kNoSuchEntryPoint);
  EXPECT_EQ(acc.calls, 1u);
}

TEST(FrameCall, BooksCallsFrameNotTheTypedCounters) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  Accumulator acc;
  const FrameServiceId svc =
      rt.bind_frame(0, &Accumulator::echo_inc, &acc);
  const auto before = rt.counters(slot).snapshot();
  CallFrame f = make_frame(svc, 1);
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(rt.call_frame(slot, 1, f), Status::kOk);
  }
  const auto after = rt.counters(slot).snapshot();
  EXPECT_EQ(after.get(obs::Counter::kCallsFrame) -
                before.get(obs::Counter::kCallsFrame),
            32u);
  // The frame lane never rides the typed machinery: no sync-call booking,
  // no worker creation, no CD traffic (those identities feed the pool
  // counters the benches assert on).
  EXPECT_EQ(after.get(obs::Counter::kCallsSync),
            before.get(obs::Counter::kCallsSync));
  EXPECT_EQ(after.get(obs::Counter::kWorkersCreated),
            before.get(obs::Counter::kWorkersCreated));
}

// ---------------------------------------------------------------------------
// The legacy shim
// ---------------------------------------------------------------------------

TEST(FrameShim, ForwardsToTypedServiceAndBack) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  Word seen_op = 0;
  const EntryPointId ep =
      rt.bind({.name = "legacy"}, /*program=*/0,
              [&](RtCtx&, ppc::RegSet& r) {
                seen_op = ppc::opcode_of(r);
                r[1] = r[0] + 5;
                ppc::set_rc(r, Status::kOk);
              });
  const FrameServiceId svc = rt.bind_frame_shim(ep);
  CallFrame f = make_frame(svc, /*opcode=*/33);
  f.w[0] = 100;
  f.w[7] = 0xABCD;  // no legacy lane: must pass through untouched
  ASSERT_EQ(rt.call_frame(slot, 1, f), Status::kOk);
  EXPECT_EQ(seen_op, 33u);     // opcode crossed the shim
  EXPECT_EQ(f.w[1], 105u);     // reply words crossed back
  EXPECT_EQ(f.w[7], 0xABCDu);  // w[7] is frame-only, shim never maps it
  EXPECT_EQ(frame_rc_of(f.op), Status::kOk);
}

TEST(FrameShim, PropagatesTypedFailure) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  const FrameServiceId svc = rt.bind_frame_shim(/*legacy=*/999);  // unbound
  CallFrame f = make_frame(svc, 1);
  EXPECT_EQ(rt.call_frame(slot, 1, f), Status::kNoSuchEntryPoint);
}

// ---------------------------------------------------------------------------
// Scatter/gather spill (>8 words)
// ---------------------------------------------------------------------------

/// A checksum service: gathers the (arbitrarily long) request, sums its
/// bytes into w[2], and scatters a transformed copy into the reply
/// segments. Payload length is sg-described, NOT frame-resident — this is
/// the 9-words-and-up path.
struct ChecksumService {
  static Status run(void* /*self*/, FrameCtx&, CallFrame& f) {
    const BulkDesc* sg = frame_sg(f);
    if (sg == nullptr) return Status::kInvalidArgument;
    std::vector<std::byte> buf(bulk_total_in(*sg));
    const std::size_t n =
        bulk_gather(*sg, LocalBulkResolver{}, buf.data(), buf.size());
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += static_cast<std::uint32_t>(buf[i]);
      buf[i] = static_cast<std::byte>(static_cast<unsigned>(buf[i]) ^ 0xFF);
    }
    f.w[2] = sum;
    f.w[3] = static_cast<Word>(
        bulk_scatter(*sg, LocalBulkResolver{}, buf.data(), n));
    return Status::kOk;
  }
};

TEST(FrameSgSpill, NineWordsSpillThroughDescriptors) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  const FrameServiceId svc = rt.bind_frame(0, &ChecksumService::run, nullptr);

  // A 9-word payload: one word too many for the frame, so it rides SG.
  std::array<Word, 9> payload;
  std::iota(payload.begin(), payload.end(), 1);
  std::array<Word, 9> reply{};
  const BulkSeg in[] = {bulk_local(payload.data(), sizeof(payload))};
  const BulkSeg out[] = {bulk_local(reply.data(), sizeof(reply))};
  const BulkDesc sg{in, 1, out, 1};

  CallFrame f = make_frame(svc, /*opcode=*/7);
  frame_attach_sg(f, &sg);
  ASSERT_TRUE(frame_has_sg(f));
  ASSERT_EQ(rt.call_frame(slot, 1, f), Status::kOk);

  std::uint32_t expect_sum = 0;
  const auto* bytes = reinterpret_cast<const std::byte*>(payload.data());
  for (std::size_t i = 0; i < sizeof(payload); ++i) {
    expect_sum += static_cast<std::uint32_t>(bytes[i]);
  }
  EXPECT_EQ(f.w[2], expect_sum);
  EXPECT_EQ(f.w[3], sizeof(payload));
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(reply[i], payload[i] ^ 0xFFFFFFFFu);
  }
}

TEST(FrameSgSpill, MultiSegmentGatherAndScatter) {
  // Scatter/gather proper: discontiguous caller buffers on both sides.
  const char a[] = "hello ";
  const char b[] = "frame world";
  const BulkSeg in[] = {bulk_local(a, 6), bulk_local(b, 11)};
  char out1[5] = {};
  char out2[12] = {};
  const BulkSeg out[] = {bulk_local(out1, 5), bulk_local(out2, 12)};
  const BulkDesc sg{in, 2, out, 2};
  EXPECT_EQ(bulk_total_in(sg), 17u);
  EXPECT_EQ(bulk_total_out(sg), 17u);

  char gathered[32] = {};
  const LocalBulkResolver local{};
  EXPECT_EQ(bulk_gather(sg, local, gathered, sizeof(gathered)), 17u);
  EXPECT_EQ(std::string_view(gathered, 17), "hello frame world");
  EXPECT_EQ(bulk_scatter(sg, local, gathered, 17), 17u);
  EXPECT_EQ(std::string_view(out1, 5), "hello");
  EXPECT_EQ(std::string_view(out2, 12), " frame world");
}

TEST(FrameSgSpill, StageRejectsOversizedPayloadInsteadOfTruncating) {
  mem::Arena arena;
  BulkStage stage(arena, /*node=*/0, /*capacity=*/16);
  std::array<std::byte, 32> big{};
  const BulkSeg in[] = {bulk_local(big.data(), big.size())};
  const BulkDesc sg{in, 1, nullptr, 0};
  const LocalBulkResolver local{};
  std::size_t len = 0;
  EXPECT_FALSE(stage.gather(sg, local, &len));

  const BulkSeg small_in[] = {bulk_local(big.data(), 8)};
  const BulkDesc small{small_in, 1, nullptr, 0};
  ASSERT_TRUE(stage.gather(small, local, &len));
  EXPECT_EQ(len, 8u);
}

TEST(FrameSgSpill, GrantedRegionSegmentsRefuseLocalResolution) {
  // A granted-region segment names a CopyServer region id, which does not
  // exist in-process: the frame lane's resolver must refuse it, and the
  // copy loops must stop at the refusal instead of faulting or truncating
  // silently past it.
  char src[8] = "abcdefg";
  char dst[8] = {};
  const BulkSeg in[] = {bulk_local(src, 4), bulk_region(3, 0, 4)};
  const BulkDesc sg{in, 2, nullptr, 0};
  const LocalBulkResolver local{};
  EXPECT_EQ(local(in[1], false), nullptr);
  char gathered[16] = {};
  EXPECT_EQ(bulk_gather(sg, local, gathered, sizeof(gathered)), 4u);
  EXPECT_LT(bulk_gather(sg, local, gathered, sizeof(gathered)),
            bulk_total_in(sg));  // short gather is detectable

  const BulkSeg out[] = {bulk_region(3, 0, 8), bulk_local(dst, 8)};
  const BulkDesc sg_out{nullptr, 0, out, 2};
  EXPECT_EQ(bulk_scatter(sg_out, local, src, 8), 0u);
}

// ---------------------------------------------------------------------------
// Cross-slot lanes
// ---------------------------------------------------------------------------

TEST(FrameRemote, DirectExecutesOnIdleSlot) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  Accumulator acc;
  const FrameServiceId svc =
      rt.bind_frame(0, &Accumulator::echo_inc, &acc);
  CallFrame f = make_frame(svc, 1);
  f.w[0] = 41;
  ASSERT_EQ(rt.call_remote_frame(me, /*target=*/1, /*caller=*/1, f),
            Status::kOk);
  EXPECT_EQ(f.w[0], 42u);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kXcallDirect), 1u);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kCallsFrame), 1u);
  EXPECT_EQ(rt.counters(0).get(obs::Counter::kXcallPosts), 0u);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(FrameRemote, UnboundServiceFailsBeforePosting) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  CallFrame f = make_frame(/*service=*/99, 1);
  EXPECT_EQ(rt.call_remote_frame(me, 1, 1, f), Status::kNoSuchEntryPoint);
  EXPECT_EQ(rt.counters(0).get(obs::Counter::kXcallPosts), 0u);
}

TEST(FrameRemote, RingPathWhileOwnerPolls) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  Accumulator acc;
  const FrameServiceId svc =
      rt.bind_frame(0, &Accumulator::echo_inc, &acc);
  std::atomic<bool> stop{false};
  std::atomic<bool> owner_up{false};
  std::thread owner([&] {
    const SlotId s = rt.register_thread();
    ASSERT_EQ(s, 1u);
    owner_up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
  });
  while (!owner_up.load(std::memory_order_acquire)) std::this_thread::yield();
  for (Word i = 0; i < 200; ++i) {
    CallFrame f = make_frame(svc, 1);
    for (std::size_t k = 0; k < kPpcWords; ++k) f.w[k] = i + k;
    ASSERT_EQ(rt.call_remote_frame(me, 1, /*caller=*/1, f), Status::kOk);
    for (std::size_t k = 0; k < kPpcWords; ++k) {
      ASSERT_EQ(f.w[k], i + k + 1);  // full 8-word reply over the ring
    }
  }
  stop.store(true, std::memory_order_release);
  owner.join();
  EXPECT_EQ(rt.counters(0).get(obs::Counter::kXcallPosts), 200u);
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kCallsFrame), 200u);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(FrameRemote, BatchRoundTripsOverServedSlot) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  Accumulator acc;
  const FrameServiceId svc =
      rt.bind_frame(0, &Accumulator::echo_inc, &acc);
  std::atomic<bool> stop{false};
  std::thread server([&] {
    const SlotId s = rt.register_thread();
    rt.serve(s, stop);
  });
  constexpr std::size_t kBatch = 150;  // > ring capacity: forces chunking
  std::vector<CallFrame> frames(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    frames[i] = make_frame(svc, 1);
    frames[i].w[0] = static_cast<Word>(i);
  }
  ASSERT_EQ(rt.call_remote_frame_batch(me, 1, /*caller=*/1,
                                       std::span<CallFrame>(frames)),
            Status::kOk);
  stop.store(true, std::memory_order_release);
  server.join();
  for (std::size_t i = 0; i < kBatch; ++i) {
    EXPECT_EQ(frames[i].w[0], static_cast<Word>(i) + 1);
    EXPECT_EQ(frame_rc_of(frames[i].op), Status::kOk);
  }
  EXPECT_EQ(rt.counters(1).get(obs::Counter::kCallsFrame), kBatch);
  EXPECT_EQ(acc.calls, kBatch);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(FrameRemote, MixedOpWordsInOneBatch) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  Accumulator acc;
  const FrameServiceId inc =
      rt.bind_frame(0, &Accumulator::echo_inc, &acc);
  const FrameServiceId fail = rt.bind_frame(
      0,
      [](void*, FrameCtx&, CallFrame&) { return Status::kInvalidArgument; },
      nullptr);
  std::array<CallFrame, 3> frames = {
      make_frame(inc, 1), make_frame(fail, 2), make_frame(inc, 3)};
  // Idle target: the batch direct-executes under one gate steal.
  EXPECT_EQ(rt.call_remote_frame_batch(me, 1, 1,
                                       std::span<CallFrame>(frames)),
            Status::kInvalidArgument);  // first failure folded
  EXPECT_EQ(frame_rc_of(frames[0].op), Status::kOk);
  EXPECT_EQ(frame_rc_of(frames[1].op), Status::kInvalidArgument);
  EXPECT_EQ(frame_rc_of(frames[2].op), Status::kOk);
}

TEST(FrameRemote, ShedsAtTheWatermark) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  Accumulator acc;
  const FrameServiceId svc =
      rt.bind_frame(0, &Accumulator::echo_inc, &acc);
  // Park a cell in slot 1's ring so its depth is nonzero, then set the
  // watermark at 1: the next frame call must shed, not queue.
  const EntryPointId noop = rt.bind(
      {}, 0, [](RtCtx&, ppc::RegSet& r) { ppc::set_rc(r, Status::kOk); });
  ASSERT_EQ(rt.call_remote_async(me, /*target=*/1, /*caller=*/1, noop,
                                 ppc::RegSet{}),
            Status::kOk);
  rt.set_shed_watermark(1);
  CallFrame f = make_frame(svc, 1);
  EXPECT_EQ(rt.call_remote_frame(me, 1, 1, f), Status::kOverloaded);
  EXPECT_EQ(frame_rc_of(f.op), Status::kOverloaded);
  EXPECT_GT(rt.counters(me).get(obs::Counter::kCallsShed), 0u);
  rt.set_shed_watermark(0);
  EXPECT_EQ(rt.call_remote_frame(me, 1, 1, f), Status::kOk);
}

// The satellite race test for set_shed_watermark: writers retune the
// admission watermark while a caller hammers the frame path's relaxed
// read. Run under TSan (xcall_tests is in both sanitizer CI jobs), this
// proves the word is never torn and the documented relaxed/relaxed
// atomic pairing is clean.
TEST(FrameRemote, WatermarkRetuneRacesCleanlyWithCallers) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  Accumulator acc;
  const FrameServiceId svc =
      rt.bind_frame(0, &Accumulator::echo_inc, &acc);
  std::atomic<bool> stop{false};
  std::thread tuner([&] {
    std::uint32_t w = 0;
    while (!stop.load(std::memory_order_acquire)) {
      rt.set_shed_watermark(w = (w + 1) % 4);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    CallFrame f = make_frame(svc, 1);
    const Status s = rt.call_remote_frame(me, 1, 1, f);
    ASSERT_TRUE(s == Status::kOk || s == Status::kOverloaded);
  }
  stop.store(true, std::memory_order_release);
  tuner.join();
  rt.set_shed_watermark(0);
}

}  // namespace
}  // namespace hppc::rt
