// KvService: the host runtime's sample domain service.
#include "rt/kv_service.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <map>
#include <optional>
#include <thread>
#include <vector>

namespace hppc::rt {
namespace {

TEST(KvService, PutGetRoundTrip) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  KvService kv(rt);
  ASSERT_EQ(kv.put(slot, 1, 42, 4242), Status::kOk);
  auto v = kv.get(slot, 1, 42);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 4242u);
}

TEST(KvService, GetMissing) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  KvService kv(rt);
  EXPECT_FALSE(kv.get(slot, 1, 777).has_value());
}

TEST(KvService, OverwriteKeepsOneEntry) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  KvService kv(rt);
  kv.put(slot, 1, 5, 100);
  kv.put(slot, 1, 5, 200);
  EXPECT_EQ(*kv.get(slot, 1, 5), 200u);
  ppc::RegSet r;
  ppc::set_op(r, kKvSize);
  ASSERT_EQ(rt.call(slot, 1, kv.ep(), r), Status::kOk);
  EXPECT_EQ(r[0], 1u);
}

TEST(KvService, EraseRequiresOwner) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  KvService kv(rt);
  kv.put(slot, /*caller=*/7, 1, 10);
  EXPECT_EQ(kv.erase(slot, /*caller=*/8, 1), Status::kPermissionDenied);
  EXPECT_TRUE(kv.get(slot, 8, 1).has_value());
  EXPECT_EQ(kv.erase(slot, 7, 1), Status::kOk);
  EXPECT_FALSE(kv.get(slot, 7, 1).has_value());
}

TEST(KvService, ProbeChainSurvivesMiddleErase) {
  // Colliding keys form a probe chain; erasing the middle one must keep
  // the tail reachable (the backward-shift correctness case).
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  KvService::Config cfg;
  cfg.shard_capacity = 8;
  cfg.enforce_ownership = false;
  KvService kv(rt, cfg);
  // Keys 0, 8, 16 all hash to slot 0 in an 8-entry shard.
  kv.put(slot, 1, 0, 100);
  kv.put(slot, 1, 8, 108);
  kv.put(slot, 1, 16, 116);
  ASSERT_EQ(kv.erase(slot, 1, 8), Status::kOk);
  EXPECT_EQ(*kv.get(slot, 1, 0), 100u);
  auto tail = kv.get(slot, 1, 16);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, 116u);
}

TEST(KvService, FillsToCapacityThenRejects) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  KvService::Config cfg;
  cfg.shard_capacity = 4;
  KvService kv(rt, cfg);
  for (Word k = 0; k < 4; ++k) {
    ASSERT_EQ(kv.put(slot, 1, k, k), Status::kOk);
  }
  EXPECT_EQ(kv.put(slot, 1, 99, 99), Status::kOutOfResources);
  // Still consistent.
  for (Word k = 0; k < 4; ++k) EXPECT_EQ(*kv.get(slot, 1, k), k);
}

TEST(KvService, RandomizedAgainstReferenceMap) {
  Runtime rt(1);
  const SlotId slot = rt.register_thread();
  KvService::Config cfg;
  cfg.shard_capacity = 64;
  cfg.enforce_ownership = false;
  KvService kv(rt, cfg);
  std::map<Word, Word> ref;
  std::uint64_t seed = 12345;
  for (int i = 0; i < 4000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const Word key = static_cast<Word>((seed >> 16) % 48);
    const Word val = static_cast<Word>(seed >> 40);
    switch ((seed >> 8) % 3) {
      case 0:
        ASSERT_EQ(kv.put(slot, 1, key, val), Status::kOk);
        ref[key] = val;
        break;
      case 1: {
        auto got = kv.get(slot, 1, key);
        auto it = ref.find(key);
        ASSERT_EQ(got.has_value(), it != ref.end()) << "key " << key;
        if (got) ASSERT_EQ(*got, it->second);
        break;
      }
      case 2: {
        const Status s = kv.erase(slot, 1, key);
        ASSERT_EQ(s == Status::kOk, ref.erase(key) == 1) << "key " << key;
        break;
      }
    }
  }
}

TEST(KvService, RemoteGetReachesAnotherSlotsShard) {
  // The owner slot is never registered: call_remote direct-executes the
  // get against its shard on this thread — zero allocations, no helper
  // thread needed.
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  KvService kv(rt);
  ASSERT_EQ(kv.put_remote(me, /*owner_slot=*/1, /*caller=*/1, 10, 111),
            Status::kOk);
  EXPECT_FALSE(kv.get(me, 1, 10).has_value());  // not in MY shard
  auto v = kv.get_remote(me, 1, 1, 10);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 111u);
  EXPECT_FALSE(kv.get_remote(me, 1, 1, 999).has_value());
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(KvService, RemoteGetAgainstServingOwner) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  KvService kv(rt);
  std::atomic<bool> stop{false};
  std::thread owner([&] {
    const SlotId s = rt.register_thread();
    rt.serve(s, stop);
  });
  for (Word k = 0; k < 64; ++k) {
    ASSERT_EQ(kv.put_remote(me, 1, 1, k, k * 10), Status::kOk);
  }
  for (Word k = 0; k < 64; ++k) {
    auto v = kv.get_remote(me, 1, 1, k);
    ASSERT_TRUE(v.has_value()) << "key " << k;
    EXPECT_EQ(*v, k * 10);
  }
  stop.store(true, std::memory_order_release);
  owner.join();
  // The shard now lives on slot 1 regardless of which path executed.
  EXPECT_FALSE(kv.get(me, 1, 0).has_value());
}

TEST(KvService, MultiPutMultiGetRideBatchedXcalls) {
  // 50 puts then 60 gets (10 of them misses) against a busy-polling
  // owner: every chunk must ride the vectored ring path, so the caller's
  // own counters show coalesced doorbells — ceil(50/16) + ceil(60/16)
  // batch posts carrying one cell per key — and zero mailbox traffic.
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  KvService kv(rt);
  std::atomic<bool> stop{false};
  std::atomic<bool> up{false};
  std::thread owner([&] {
    const SlotId s = rt.register_thread();
    up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
  });
  while (!up.load(std::memory_order_acquire)) std::this_thread::yield();

  constexpr std::size_t kPuts = 50;
  constexpr std::size_t kGets = 60;
  std::vector<Word> keys(kPuts), values(kPuts);
  for (std::size_t i = 0; i < kPuts; ++i) {
    keys[i] = 1000 + i;
    values[i] = 10 * i + 1;
  }
  const auto before = rt.slot_snapshot(me);
  ASSERT_EQ(kv.multi_put(me, /*owner_slot=*/1, /*caller=*/1, keys, values),
            Status::kOk);

  std::vector<Word> probe(kGets);
  for (std::size_t i = 0; i < kGets; ++i) probe[i] = 1000 + i;  // last 10 miss
  std::vector<std::optional<Word>> out(kGets);
  EXPECT_EQ(kv.multi_get(me, 1, 1, probe, out), kPuts);
  const auto delta = rt.slot_snapshot(me).delta(before);
  stop.store(true, std::memory_order_release);
  owner.join();

  for (std::size_t i = 0; i < kPuts; ++i) {
    ASSERT_TRUE(out[i].has_value()) << "key " << probe[i];
    EXPECT_EQ(*out[i], values[i]);
  }
  for (std::size_t i = kPuts; i < kGets; ++i) {
    EXPECT_FALSE(out[i].has_value()) << "key " << probe[i];
  }
  EXPECT_EQ(delta.get(obs::Counter::kXcallBatchPosts), 4u + 4u);
  EXPECT_EQ(delta.get(obs::Counter::kXcallCellsPerBatch), kPuts + kGets);
  EXPECT_EQ(delta.get(obs::Counter::kXcallDirect), 0u);
  EXPECT_EQ(rt.shared_counters().get(obs::Counter::kMailboxAllocs), 0u);
}

TEST(KvService, MultiGetAnswersHotKeysLocallyAndBatchesOnlyMisses) {
  // With the replicated hot set on, multi_get probes each key's replica
  // first: hot keys never touch the ring, so a probe list that is half
  // hot costs doorbells only for the cold half.
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  KvService::Config cfg;
  cfg.replicated_hot_capacity = 8;
  KvService kv(rt, cfg);
  // Two hot keys, direct-executed on the unregistered owner's shard;
  // write-through admits them, and the poll drains our refresh nudge.
  ASSERT_EQ(kv.put_remote(me, 1, 1, 5, 500), Status::kOk);
  ASSERT_EQ(kv.put_remote(me, 1, 1, 6, 600), Status::kOk);
  rt.poll(me);

  std::atomic<bool> stop{false};
  std::atomic<bool> up{false};
  std::thread owner([&] {
    const SlotId s = rt.register_thread();
    up.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
  });
  while (!up.load(std::memory_order_acquire)) std::this_thread::yield();

  const std::array<Word, 4> probe = {5, 6, 7, 8};  // 2 hot, 2 misses
  std::array<std::optional<Word>, 4> out;
  const auto before = rt.slot_snapshot(me);
  EXPECT_EQ(kv.multi_get(me, 1, 1, probe, out), 2u);
  const auto delta = rt.slot_snapshot(me).delta(before);
  stop.store(true, std::memory_order_release);
  owner.join();

  EXPECT_EQ(*out[0], 500u);
  EXPECT_EQ(*out[1], 600u);
  EXPECT_FALSE(out[2].has_value());
  EXPECT_FALSE(out[3].has_value());
  // One doorbell, two cells: only the cold keys rode the ring.
  EXPECT_EQ(delta.get(obs::Counter::kXcallBatchPosts), 1u);
  EXPECT_EQ(delta.get(obs::Counter::kXcallCellsPerBatch), 2u);
  EXPECT_GT(delta.get(obs::Counter::kReplReads), 0u);
}

TEST(KvService, ReplicatedHotGetServesLocally) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  KvService::Config cfg;
  cfg.replicated_hot_capacity = 8;
  KvService kv(rt, cfg);
  // The put direct-executes on slot 1's shard (gate steal), write-through
  // admits the key to the hot set, and a refresh nudge lands in our ring.
  ASSERT_EQ(kv.put_remote(me, /*owner_slot=*/1, /*caller=*/1, 10, 111),
            Status::kOk);
  rt.poll(me);  // drain the nudge: our replica refreshes

  const auto before = rt.slot_snapshot(me);
  auto v = kv.get_remote(me, 1, 1, 10);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 111u);
  const auto delta = rt.slot_snapshot(me).delta(before);
  // Served entirely from this slot's replica: no xcall, no lock.
  EXPECT_EQ(delta.get(obs::Counter::kCallsRemote), 0u);
  EXPECT_EQ(delta.get(obs::Counter::kXcallPosts), 0u);
  EXPECT_EQ(delta.get(obs::Counter::kLocksTaken), 0u);
  EXPECT_GT(delta.get(obs::Counter::kReplReads), 0u);
}

TEST(KvService, ReplicatedHotWriteThroughUpdates) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  KvService::Config cfg;
  cfg.replicated_hot_capacity = 8;
  KvService kv(rt, cfg);
  ASSERT_EQ(kv.put_remote(me, 1, 1, 10, 111), Status::kOk);
  rt.poll(me);
  EXPECT_EQ(*kv.get_remote(me, 1, 1, 10), 111u);
  ASSERT_EQ(kv.put_remote(me, 1, 1, 10, 222), Status::kOk);
  rt.poll(me);
  EXPECT_EQ(*kv.get_remote(me, 1, 1, 10), 222u);
}

TEST(KvService, ReplicatedHotEraseFallsBackToOwner) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  KvService::Config cfg;
  cfg.replicated_hot_capacity = 8;
  KvService kv(rt, cfg);
  ASSERT_EQ(kv.put_remote(me, 1, 1, 10, 111), Status::kOk);
  rt.poll(me);
  ASSERT_TRUE(kv.get_remote(me, 1, 1, 10).has_value());

  ppc::RegSet r;
  r[0] = 10;
  ppc::set_op(r, kKvErase);
  ASSERT_EQ(rt.call_remote(me, 1, 1, kv.ep(), r), Status::kOk);
  rt.poll(me);  // drain the erase's refresh nudge
  // Hot miss now falls through to the owner's shard, which says gone.
  EXPECT_FALSE(kv.get_remote(me, 1, 1, 10).has_value());
}

TEST(KvService, ReplicatedHotMissUsesXcallPath) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  KvService::Config cfg;
  cfg.replicated_hot_capacity = 2;  // tiny: keys beyond it never admitted
  KvService kv(rt, cfg);
  for (Word k = 0; k < 6; ++k) {
    ASSERT_EQ(kv.put_remote(me, 1, 1, k, k * 10), Status::kOk);
  }
  rt.poll(me);
  // Every key still readable — admitted ones from the replica, the rest
  // through the owner's xcall channel.
  for (Word k = 0; k < 6; ++k) {
    auto v = kv.get_remote(me, 1, 1, k);
    ASSERT_TRUE(v.has_value()) << "key " << k;
    EXPECT_EQ(*v, k * 10);
  }
}

TEST(KvService, MultiOpChunkDefaultsAndClamps) {
  Runtime rt(1);
  EXPECT_EQ(KvService(rt).multi_op_chunk(), kKvDefaultMultiOpChunk);
  KvService::Config tiny;
  tiny.multi_op_chunk = 0;  // nonsense: clamped up to 1
  EXPECT_EQ(KvService(rt, tiny).multi_op_chunk(), 1u);
  KvService::Config huge;
  huge.multi_op_chunk = 10'000;  // clamped to the ring-capacity bound
  EXPECT_EQ(KvService(rt, huge).multi_op_chunk(), kKvMaxMultiOpChunk);
}

TEST(KvService, VectoredOpsCorrectAcrossChunkSizes) {
  // The chunk stride is a performance knob, never a semantics knob: the
  // same burst must land identically at stride 1 (degenerate), an odd
  // stride that straddles the burst, the default, and the max.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{5},
                                  kKvDefaultMultiOpChunk,
                                  kKvMaxMultiOpChunk}) {
    Runtime rt(2);
    const SlotId me = rt.register_thread();
    KvService::Config cfg;
    cfg.multi_op_chunk = chunk;
    KvService kv(rt, cfg);
    std::vector<Word> keys(37), values(37);
    for (Word i = 0; i < 37; ++i) {
      keys[i] = i;
      values[i] = 1000 + i;
    }
    ASSERT_EQ(kv.multi_put(me, 1, 1, keys, values), Status::kOk)
        << "chunk " << chunk;
    std::vector<std::optional<Word>> out(37);
    EXPECT_EQ(kv.multi_get(me, 1, 1, keys, out), 37u) << "chunk " << chunk;
    for (Word i = 0; i < 37; ++i) {
      ASSERT_TRUE(out[i].has_value()) << "chunk " << chunk << " key " << i;
      EXPECT_EQ(*out[i], 1000 + i);
    }
  }
}

TEST(KvService, ShardsArePerSlot) {
  Runtime rt(2);
  const SlotId me = rt.register_thread();
  KvService kv(rt);
  kv.put(me, 1, 10, 111);

  std::optional<Word> other_sees;
  std::thread t([&] {
    const SlotId other = rt.register_thread();
    other_sees = kv.get(other, 1, 10);
  });
  t.join();
  // Different slot, different shard: the key is not there.
  EXPECT_FALSE(other_sees.has_value());
  EXPECT_TRUE(kv.get(me, 1, 10).has_value());
  EXPECT_EQ(kv.initialized_workers(), 2u);  // one init per slot's worker
}

}  // namespace
}  // namespace hppc::rt
