// End-to-end call tracing on the host runtime: a traced request must come
// out of the rings as a parent-linked span chain — root on the caller's
// slot, remote/batch spans under it, server-exec spans on the server's
// slot pointing back across the ring — and the chrome exporter must emit
// the nestable async events a viewer needs. Only meaningful in trace
// builds; on a shipping build every test here SKIPs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "rt/runtime.h"

namespace hppc {
namespace {

#if defined(HPPC_TRACE) && HPPC_TRACE
constexpr bool kTraceBuild = true;
#else
constexpr bool kTraceBuild = false;
#endif

using obs::SpanKind;
using obs::TraceEvent;
using obs::TraceRecord;

struct Span {
  std::uint32_t id = 0;
  std::uint32_t parent = 0;
  SpanKind kind = SpanKind::kRoot;
  std::uint16_t slot = 0;
  bool ended = false;
};

/// Collect the spans of one trace id from every slot's ring.
std::map<std::uint32_t, Span> collect_spans(rt::Runtime& rt,
                                            std::uint64_t trace_id) {
  std::map<std::uint32_t, Span> spans;
  for (rt::SlotId s = 0; s < rt.slots(); ++s) {
    for (const TraceRecord& r : rt.trace_ring(s).snapshot()) {
      if (r.trace_id != trace_id) continue;
      const auto ev = static_cast<TraceEvent>(r.event);
      if (ev == TraceEvent::kSpanBegin) {
        Span& sp = spans[r.span];
        sp.id = r.span;
        sp.parent = r.parent;
        sp.kind = static_cast<SpanKind>(r.arg);
        sp.slot = r.slot;
      } else if (ev == TraceEvent::kSpanEnd) {
        spans[r.span].ended = true;
      }
    }
  }
  return spans;
}

int count_kind(const std::map<std::uint32_t, Span>& spans, SpanKind k) {
  int n = 0;
  for (const auto& [id, sp] : spans) n += sp.kind == k;
  return n;
}

/// A second thread that busy-polls its slot: its gate stays owned, so
/// remote calls from the main thread take the ring (post -> drain ->
/// complete) instead of the idle-owner direct steal.
class BusyServer {
 public:
  explicit BusyServer(rt::Runtime& rt) : rt_(rt) {
    thread_ = std::thread([this] {
      const rt::SlotId s = rt_.register_thread();
      slot_.store(s, std::memory_order_release);
      up_.store(true, std::memory_order_release);
      while (!stop_.load(std::memory_order_acquire)) rt_.poll(s);
    });
    while (!up_.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  ~BusyServer() { stop(); }
  /// Join the polling thread. Call before snapshotting trace rings: the
  /// rings are single-writer plain stores, so the join is what gives the
  /// reader a happens-before edge over the server's records.
  void stop() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }
  rt::SlotId slot() const { return slot_.load(std::memory_order_acquire); }

 private:
  rt::Runtime& rt_;
  std::thread thread_;
  std::atomic<rt::SlotId> slot_{0};
  std::atomic<bool> up_{false};
  std::atomic<bool> stop_{false};
};

TEST(TraceSpans, RootSpanOpensAndCloses) {
  if (!kTraceBuild) GTEST_SKIP() << "needs -DHPPC_TRACE=ON";
  rt::Runtime rt(1);
  const rt::SlotId slot = rt.register_thread();
  const obs::TraceCtx ctx = rt.trace_begin(slot);
  EXPECT_TRUE(ctx.traced());
  EXPECT_NE(ctx.span_id, 0u);
  EXPECT_EQ(rt.trace_ctx(slot).trace_id, ctx.trace_id);
  rt.trace_end(slot);
  EXPECT_FALSE(rt.trace_ctx(slot).traced());

  const auto spans = collect_spans(rt, ctx.trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans.begin()->second.kind, SpanKind::kRoot);
  EXPECT_TRUE(spans.begin()->second.ended);
}

TEST(TraceSpans, UntracedCallsMintNoSpans) {
  if (!kTraceBuild) GTEST_SKIP() << "needs -DHPPC_TRACE=ON";
  rt::Runtime rt(1);
  const rt::SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {.name = "null"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);
  for (const TraceRecord& r : rt.trace_ring(slot).snapshot()) {
    EXPECT_NE(static_cast<TraceEvent>(r.event), TraceEvent::kSpanBegin);
  }
}

TEST(TraceSpans, LocalCallNestsUnderRoot) {
  if (!kTraceBuild) GTEST_SKIP() << "needs -DHPPC_TRACE=ON";
  rt::Runtime rt(1);
  const rt::SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {.name = "null"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
  const obs::TraceCtx ctx = rt.trace_begin(slot);
  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);
  rt.trace_end(slot);

  const auto spans = collect_spans(rt, ctx.trace_id);
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(count_kind(spans, SpanKind::kLocalCall), 1);
  for (const auto& [id, sp] : spans) {
    EXPECT_TRUE(sp.ended) << id;
    if (sp.kind == SpanKind::kLocalCall) EXPECT_EQ(sp.parent, ctx.span_id);
  }
}

TEST(TraceSpans, BatchRoundTripLinksCallerRingAndServerSlots) {
  // The acceptance chain: one traced call_remote_batch must produce a
  // parent-linked span chain crossing caller slot -> ring -> server slot —
  // a batch span under the root on the caller's slot, and one server_exec
  // span PER CELL on the server's slot whose parent is the batch span.
  if (!kTraceBuild) GTEST_SKIP() << "needs -DHPPC_TRACE=ON";
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {.name = "echo"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
        regs[1] = regs[0] + 1;
        ppc::set_rc(regs, Status::kOk);
      });
  BusyServer server(rt);

  const obs::TraceCtx ctx = rt.trace_begin(me);
  constexpr int kBatch = 4;
  ppc::RegSet batch[kBatch];
  for (int i = 0; i < kBatch; ++i) {
    batch[i] = ppc::RegSet{};
    batch[i][0] = static_cast<Word>(i);
    ppc::set_op(batch[i], 1);
  }
  ASSERT_EQ(rt.call_remote_batch(me, server.slot(), 1, ep,
                                 std::span<ppc::RegSet>(batch, kBatch)),
            Status::kOk);
  rt.trace_end(me);
  server.stop();  // join before reading the server slot's ring

  const auto spans = collect_spans(rt, ctx.trace_id);
  ASSERT_EQ(count_kind(spans, SpanKind::kRoot), 1);
  // The batch may ride the ring (kBatch span) or, if the server briefly
  // yielded its gate, go direct (kRemoteDirect per cell); either way every
  // executed cell emits a server_exec span parent-linked into this trace.
  const int batches = count_kind(spans, SpanKind::kBatch);
  const int directs = count_kind(spans, SpanKind::kRemoteDirect);
  EXPECT_GE(batches + directs, 1);
  EXPECT_EQ(count_kind(spans, SpanKind::kServerExec), kBatch);

  std::uint32_t batch_span = 0;
  for (const auto& [id, sp] : spans) {
    if (sp.kind == SpanKind::kBatch) batch_span = id;
  }
  for (const auto& [id, sp] : spans) {
    EXPECT_TRUE(sp.ended) << "span " << id << " never ended";
    // Every parent link resolves inside this trace (completeness) ...
    if (sp.parent != 0) {
      EXPECT_TRUE(spans.count(sp.parent))
          << "span " << id << " parent " << sp.parent << " missing";
    }
    switch (sp.kind) {
      case SpanKind::kRoot:
        EXPECT_EQ(sp.parent, 0u);
        EXPECT_EQ(sp.slot, me);
        break;
      case SpanKind::kBatch:
      case SpanKind::kRemoteDirect:
        EXPECT_EQ(sp.parent, ctx.span_id);
        EXPECT_EQ(sp.slot, me);
        break;
      case SpanKind::kServerExec:
        if (batch_span != 0) EXPECT_EQ(sp.parent, batch_span);
        EXPECT_EQ(sp.slot, server.slot());
        break;
      default:
        break;
    }
  }
  // ... and the chain is acyclic: every span reaches the root.
  for (const auto& [id, sp] : spans) {
    std::uint32_t cur = id;
    int hops = 0;
    while (cur != 0) {
      ASSERT_LE(++hops, static_cast<int>(spans.size())) << "cycle at " << id;
      const auto it = spans.find(cur);
      ASSERT_NE(it, spans.end());
      cur = it->second.parent;
    }
  }
}

TEST(TraceSpans, RemoteCallCarriesContextIntoNestedWork) {
  if (!kTraceBuild) GTEST_SKIP() << "needs -DHPPC_TRACE=ON";
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();
  const EntryPointId echo = rt.bind(
      {.name = "echo"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
        regs[1] = regs[0] + 1;
        ppc::set_rc(regs, Status::kOk);
      });
  const EntryPointId nested = rt.bind(
      {.name = "nested"}, 700, [echo](rt::RtCtx& ctx, ppc::RegSet& regs) {
        ppc::RegSet inner;
        inner[0] = regs[0];
        ppc::set_op(inner, 1);
        ctx.call(echo, inner);
        regs[1] = inner[1];
        ppc::set_rc(regs, Status::kOk);
      });
  BusyServer server(rt);

  const obs::TraceCtx ctx = rt.trace_begin(me);
  ppc::RegSet regs;
  regs[0] = 7;
  ppc::set_op(regs, 1);
  ASSERT_EQ(rt.call_remote(me, server.slot(), 1, nested, regs), Status::kOk);
  rt.trace_end(me);
  EXPECT_EQ(regs[1], 8u);
  server.stop();  // join before reading the server slot's ring

  const auto spans = collect_spans(rt, ctx.trace_id);
  // The nested ctx.call on the server's slot must appear as a local_call
  // span parented under the server_exec span — the context crossed the
  // ring inside the xcall cell.
  ASSERT_EQ(count_kind(spans, SpanKind::kServerExec) +
                count_kind(spans, SpanKind::kRemoteDirect),
            1);
  ASSERT_EQ(count_kind(spans, SpanKind::kLocalCall), 1);
  std::uint32_t exec_span = 0;
  for (const auto& [id, sp] : spans) {
    if (sp.kind == SpanKind::kServerExec || sp.kind == SpanKind::kRemoteDirect)
      exec_span = id;
  }
  for (const auto& [id, sp] : spans) {
    if (sp.kind == SpanKind::kLocalCall) {
      EXPECT_EQ(sp.parent, exec_span);
      EXPECT_EQ(sp.slot, server.slot());
    }
  }
}

TEST(TraceSpans, ChromeExportEmitsNestableAsyncPairs) {
  if (!kTraceBuild) GTEST_SKIP() << "needs -DHPPC_TRACE=ON";
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {.name = "echo"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
        regs[1] = regs[0] + 1;
        ppc::set_rc(regs, Status::kOk);
      });
  BusyServer server(rt);

  rt.trace_begin(me);
  ppc::RegSet batch[2];
  for (int i = 0; i < 2; ++i) {
    batch[i] = ppc::RegSet{};
    ppc::set_op(batch[i], 1);
  }
  ASSERT_EQ(rt.call_remote_batch(me, server.slot(), 1, ep,
                                 std::span<ppc::RegSet>(batch, 2)),
            Status::kOk);
  rt.trace_end(me);
  server.stop();  // join before exporting the server slot's ring

  std::vector<obs::NamedRing> rings;
  for (rt::SlotId s = 0; s < rt.slots(); ++s) {
    rings.push_back({"slot" + std::to_string(s), &rt.trace_ring(s)});
  }
  const std::string chrome = obs::trace_to_chrome_json(rings);
  EXPECT_NE(chrome.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"root\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"server_exec\""), std::string::npos);
  EXPECT_NE(chrome.find("\"parent\":"), std::string::npos);
  EXPECT_NE(chrome.find("\"id\":\"0x"), std::string::npos);
}

TEST(TraceSpans, SpanIdsAreSlotTagged) {
  if (!kTraceBuild) GTEST_SKIP() << "needs -DHPPC_TRACE=ON";
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {.name = "echo"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
        ppc::set_rc(regs, Status::kOk);
      });
  BusyServer server(rt);
  const obs::TraceCtx ctx = rt.trace_begin(me);
  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  ASSERT_EQ(rt.call_remote(me, server.slot(), 1, ep, regs), Status::kOk);
  rt.trace_end(me);
  server.stop();  // join before reading the server slot's ring

  for (const auto& [id, sp] : collect_spans(rt, ctx.trace_id)) {
    // High byte of the span id names the minting slot: concurrent slots
    // can never collide.
    EXPECT_EQ(id >> 24, static_cast<std::uint32_t>(sp.slot)) << id;
  }
}

}  // namespace
}  // namespace hppc
