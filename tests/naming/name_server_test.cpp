// Name server (§4.5.5): registration, lookup, the separation of naming from
// authentication (§4.1), and register-packed name transport.
#include "naming/name_server.h"

#include <gtest/gtest.h>

#include "kernel/machine.h"

namespace hppc::naming {
namespace {

using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;
using ppc::RegSet;
using ppc::ServerCtx;

struct Fixture {
  Fixture() : machine(sim::hector_config(4)), ppc(machine), names(ppc) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  EntryPointId bind_null(ProgramId prog) {
    auto* as = &machine.create_address_space(prog, 0);
    return ppc.bind({}, as, prog, [](ServerCtx&, RegSet& regs) {
      set_rc(regs, Status::kOk);
    });
  }

  Machine machine;
  PpcFacility ppc;
  NameServer names;
};

TEST(NamePacking, RoundTrip) {
  for (const char* name : {"a", "bob", "file-server", "exactly-24-bytes-name!!"}) {
    RegSet regs;
    pack_name(name, regs);
    EXPECT_EQ(unpack_name(regs), name);
  }
}

TEST(NamePacking, MaxLengthName) {
  const std::string max(kMaxNameBytes, 'x');
  RegSet regs;
  pack_name(max, regs);
  EXPECT_EQ(unpack_name(regs), max);
}

TEST(NameServer, RegisterThenLookup) {
  Fixture f;
  const EntryPointId svc = f.bind_null(700);
  Process& server_prog = f.make_client(700, 0);
  ASSERT_EQ(NameServer::register_name(f.ppc, f.machine.cpu(0), server_prog,
                                      "bob", svc),
            Status::kOk);
  EXPECT_EQ(f.names.size(), 1u);

  Process& client = f.make_client(100, 1);
  EntryPointId found = 0;
  ASSERT_EQ(
      NameServer::lookup(f.ppc, f.machine.cpu(1), client, "bob", &found),
      Status::kOk);
  EXPECT_EQ(found, svc);

  // The looked-up id is directly callable.
  RegSet regs;
  set_op(regs, 1);
  EXPECT_EQ(f.ppc.call(f.machine.cpu(1), client, found, regs), Status::kOk);
}

TEST(NameServer, LookupMissingName) {
  Fixture f;
  Process& client = f.make_client(100, 0);
  EntryPointId found = 0;
  EXPECT_EQ(
      NameServer::lookup(f.ppc, f.machine.cpu(0), client, "ghost", &found),
      Status::kNoSuchEntryPoint);
}

TEST(NameServer, DuplicateRegistrationRejected) {
  Fixture f;
  const EntryPointId svc = f.bind_null(700);
  Process& p = f.make_client(700, 0);
  ASSERT_EQ(NameServer::register_name(f.ppc, f.machine.cpu(0), p, "dup", svc),
            Status::kOk);
  EXPECT_EQ(NameServer::register_name(f.ppc, f.machine.cpu(0), p, "dup", svc),
            Status::kInvalidArgument);
}

TEST(NameServer, OnlyOwnerMayUnregister) {
  Fixture f;
  const EntryPointId svc = f.bind_null(700);
  Process& owner = f.make_client(700, 0);
  Process& other = f.make_client(999, 1);
  ASSERT_EQ(NameServer::register_name(f.ppc, f.machine.cpu(0), owner, "mine",
                                      svc),
            Status::kOk);
  EXPECT_EQ(NameServer::unregister_name(f.ppc, f.machine.cpu(1), other,
                                        "mine"),
            Status::kPermissionDenied);
  EXPECT_EQ(NameServer::unregister_name(f.ppc, f.machine.cpu(0), owner,
                                        "mine"),
            Status::kOk);
  EntryPointId found = 0;
  EXPECT_EQ(NameServer::lookup(f.ppc, f.machine.cpu(0), owner, "mine",
                               &found),
            Status::kNoSuchEntryPoint);
}

TEST(NameServer, RejectsOversizeAndEmptyNames) {
  Fixture f;
  Process& p = f.make_client(100, 0);
  const std::string long_name(kMaxNameBytes + 1, 'y');
  EXPECT_EQ(NameServer::register_name(f.ppc, f.machine.cpu(0), p, long_name,
                                      9),
            Status::kInvalidArgument);
  EXPECT_EQ(NameServer::register_name(f.ppc, f.machine.cpu(0), p, "", 9),
            Status::kInvalidArgument);
  EntryPointId found;
  EXPECT_EQ(NameServer::lookup(f.ppc, f.machine.cpu(0), p, "", &found),
            Status::kInvalidArgument);
}

TEST(NameServer, ResolveReturnsBoundStub) {
  Fixture f;
  const EntryPointId svc = f.bind_null(700);
  Process& owner = f.make_client(700, 0);
  ASSERT_EQ(NameServer::register_name(f.ppc, f.machine.cpu(0), owner,
                                      "svc", svc),
            Status::kOk);
  Process& client = f.make_client(100, 1);
  auto stub = resolve(f.ppc, f.machine.cpu(1), client, "svc");
  ASSERT_TRUE(stub.has_value());
  EXPECT_EQ(stub->entry_point(), svc);
  Word dummy = 0;
  EXPECT_EQ((*stub)(1, dummy), Status::kOk);
  EXPECT_FALSE(
      resolve(f.ppc, f.machine.cpu(1), client, "missing").has_value());
}

TEST(NameServer, ManyNames) {
  Fixture f;
  Process& p = f.make_client(700, 0);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(NameServer::register_name(f.ppc, f.machine.cpu(0), p,
                                        "svc" + std::to_string(i),
                                        100 + i),
              Status::kOk);
  }
  EntryPointId found = 0;
  ASSERT_EQ(NameServer::lookup(f.ppc, f.machine.cpu(0), p, "svc37", &found),
            Status::kOk);
  EXPECT_EQ(found, 137u);
}

}  // namespace
}  // namespace hppc::naming
