// Failure injection under live traffic: services are killed while clients
// are mid-loop; clients observe clean failures, never corruption, and the
// machine quiesces with all invariants intact.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "fault/failpoints.h"
#include "kernel/machine.h"
#include "ppc/facility.h"
#include "rt/runtime.h"

namespace hppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;
using ppc::RegSet;

TEST(KillUnderTraffic, SoftKillDrainsCleanly) {
  Machine machine(sim::hector_config(8));
  PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind(
      {}, &as, 700,
      [](ppc::ServerCtx&, RegSet& regs) { set_rc(regs, Status::kOk); });

  std::vector<std::uint64_t> ok(8, 0), failed(8, 0);
  std::vector<Process*> clients;
  const Cycles kill_at = machine.config().cycles_from_us(400.0);
  bool killed = false;

  for (CpuId c = 0; c < 8; ++c) {
    auto& cas = machine.create_address_space(100 + c,
                                             machine.config().node_of_cpu(c));
    Process& client = machine.create_process(
        100 + c, &cas, "client", machine.config().node_of_cpu(c));
    clients.push_back(&client);
    client.set_body([&, c](Cpu& cpu, Process& self) {
      if (cpu.now() >= 4 * kill_at) return;  // bounded run
      if (c == 0 && !killed && cpu.now() >= kill_at) {
        killed = true;
        EXPECT_EQ(ppc.soft_kill(cpu, ep), Status::kOk);
      }
      RegSet regs;
      set_op(regs, 1);
      const Status s = ppc.call(cpu, self, ep, regs);
      if (s == Status::kOk) {
        ++ok[c];
      } else {
        // After the kill clients see a clean error, nothing else.
        EXPECT_TRUE(s == Status::kEntryPointDraining ||
                    s == Status::kNoSuchEntryPoint);
        ++failed[c];
      }
      machine.ready(cpu, self);
    });
    machine.ready(machine.cpu(c), client);
  }
  machine.run_until_idle();

  std::uint64_t total_ok = 0, total_failed = 0;
  for (CpuId c = 0; c < 8; ++c) {
    total_ok += ok[c];
    total_failed += failed[c];
    EXPECT_GT(ok[c], 0u) << "cpu " << c;       // everyone succeeded first
    EXPECT_GT(failed[c], 0u) << "cpu " << c;   // and saw the kill
  }
  EXPECT_GT(total_ok, 0u);
  EXPECT_GT(total_failed, 0u);
  EXPECT_EQ(ppc.entry_point(ep)->state(), ppc::EpState::kDead);
  EXPECT_EQ(ppc.entry_point(ep)->total_in_progress(), 0u);
}

TEST(KillUnderTraffic, HardKillThenRebindSameTraffic) {
  Machine machine(sim::hector_config(4));
  PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  auto bind_version = [&](Word version) {
    return ppc.bind({}, &as, 700, [version](ppc::ServerCtx&, RegSet& regs) {
      regs[0] = version;
      set_rc(regs, Status::kOk);
    });
  };
  const EntryPointId v1 = bind_version(1);

  // Warm all CPUs against v1.
  std::vector<Process*> clients;
  RegSet regs;
  for (CpuId c = 0; c < 4; ++c) {
    auto& cas = machine.create_address_space(100 + c,
                                             machine.config().node_of_cpu(c));
    clients.push_back(&machine.create_process(
        100 + c, &cas, "client", machine.config().node_of_cpu(c)));
    set_op(regs, 1);
    ASSERT_EQ(ppc.call(machine.cpu(c), *clients[c], v1, regs), Status::kOk);
    ASSERT_EQ(regs[0], 1u);
  }

  ASSERT_EQ(ppc.hard_kill(machine.cpu(0), v1), Status::kOk);
  machine.run_until_idle();

  // Rebind (may reuse the slot id); the new service answers on every CPU
  // and fresh workers are created (old ones were reclaimed).
  const EntryPointId v2 = bind_version(2);
  for (CpuId c = 0; c < 4; ++c) {
    set_op(regs, 1);
    ASSERT_EQ(ppc.call(machine.cpu(c), *clients[c], v2, regs), Status::kOk);
    EXPECT_EQ(regs[0], 2u);
  }
  EXPECT_EQ(ppc.entry_point(v2)->total_workers_created(), 4u);
}

TEST(KillUnderTraffic, ExchangeUnderLoadSwitchesVersionsAtomically) {
  Machine machine(sim::hector_config(4));
  PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  const EntryPointId ep =
      ppc.bind({}, &as, 700, [](ppc::ServerCtx&, RegSet& regs) {
        regs[0] = 1;
        set_rc(regs, Status::kOk);
      });

  std::vector<Word> seen;
  auto& cas = machine.create_address_space(100, 0);
  Process& client = machine.create_process(100, &cas, "c", 0);
  const Cycles swap_at = machine.config().cycles_from_us(300.0);
  bool swapped = false;
  client.set_body([&](Cpu& cpu, Process& self) {
    if (cpu.now() >= 3 * swap_at) return;
    if (!swapped && cpu.now() >= swap_at) {
      swapped = true;
      ASSERT_EQ(ppc.exchange(cpu, ep,
                             [](ppc::ServerCtx&, RegSet& r) {
                               r[0] = 2;
                               set_rc(r, Status::kOk);
                             }),
                Status::kOk);
    }
    RegSet regs;
    set_op(regs, 1);
    ASSERT_EQ(ppc.call(cpu, self, ep, regs), Status::kOk);
    seen.push_back(regs[0]);
    machine.ready(cpu, self);
  });
  machine.ready(machine.cpu(0), client);
  machine.run_until_idle();

  // Monotone version sequence: 1...1 2...2, never interleaved.
  ASSERT_GT(seen.size(), 2u);
  EXPECT_EQ(seen.front(), 1u);
  EXPECT_EQ(seen.back(), 2u);
  bool crossed = false;
  for (Word v : seen) {
    if (v == 2) crossed = true;
    if (crossed) EXPECT_EQ(v, 2u);
  }
}

// ---------------------------------------------------------------------------
// Host runtime: hard kill racing call_remote
// ---------------------------------------------------------------------------

// A hard kill racing a cross-slot call that was already admitted (its cell
// parked in the target ring, pre-screen passed) must resolve to exactly
// kCallAborted or kOk — never a hang, never a stale execution against dead
// service state. In fault-injection builds the completion-delay failpoint
// stretches the execute→complete window, so the kill also races the reply
// publish, not just the drain.
TEST(KillUnderTraffic, RtHardKillRacingCallRemoteAbortsOrCompletes) {
#if defined(HPPC_FAULT_INJECTION) && HPPC_FAULT_INJECTION
  ASSERT_TRUE(fault::arm("rt.xcall.complete.delay", "prob=0.5,delay=20000"));
#endif
  int aborted = 0, completed = 0;
  for (int iter = 0; iter < 12; ++iter) {
    rt::Runtime rt(3);
    const rt::SlotId me = rt.register_thread();
    ASSERT_EQ(me, 0u);
    const EntryPointId ep =
        rt.bind({.name = "victim"}, 0, [](rt::RtCtx&, rt::RegSet& regs) {
          regs[1] = regs[0] + 1;
          ppc::set_rc(regs, Status::kOk);
        });

    // The target's owner holds its gate but drains only when told to, so
    // the caller's cell provably parks before the kill lands.
    std::atomic<bool> drain{false};
    std::atomic<bool> owner_up{false};
    std::atomic<Status> result{Status::kInvalidArgument};
    std::thread owner([&] {
      const rt::SlotId s = rt.register_thread();
      owner_up.store(true, std::memory_order_release);
      while (!drain.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      // Keep polling until the caller resolved: the depth handshake can
      // observe a claimed-but-not-yet-published cell, and a single early
      // empty poll must not strand it.
      while (result.load(std::memory_order_acquire) ==
             Status::kInvalidArgument) {
        rt.poll(s);
        std::this_thread::yield();
      }
    });
    while (!owner_up.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    std::thread caller([&] {
      const rt::SlotId s = rt.register_thread();
      rt::RegSet r{};
      r[0] = 7;
      const Status st = rt.call_remote(s, 1, /*caller=*/2, ep, r);
      if (st == Status::kOk) {
        EXPECT_EQ(r[1], 8u);
      }
      result.store(st, std::memory_order_release);
    });

    // Admitted: the cell is visible in the ring (atomic cursor reads).
    while (rt.xcall_depth(1) == 0) std::this_thread::yield();
    // Release the drain and kill concurrently: on some iterations the
    // drain wins (kOk), on others the kill does (kCallAborted).
    drain.store(true, std::memory_order_release);
    if (iter % 2 == 0) std::this_thread::yield();
    ASSERT_EQ(rt.hard_kill(ep), Status::kOk);

    caller.join();
    owner.join();
    const Status st = result.load(std::memory_order_acquire);
    ASSERT_TRUE(st == Status::kOk || st == Status::kCallAborted)
        << "iter " << iter << ": " << to_string(st);
    (st == Status::kOk ? completed : aborted)++;
  }
#if defined(HPPC_FAULT_INJECTION) && HPPC_FAULT_INJECTION
  fault::disarm("rt.xcall.complete.delay");
#endif
  // Twelve races must produce at least one resolution of some kind; both
  // outcomes are legal, a hang is the only failure (and shows up as a
  // test timeout).
  EXPECT_EQ(aborted + completed, 12);
}

}  // namespace
}  // namespace hppc
