// Integration: the whole system at once — Frank, the name server, Bob, the
// CopyServer, the disk, and the exception server, on a 16-processor
// machine, with clients that mix synchronous, asynchronous, blocking and
// bulk-data operations, and a mid-run soft-kill/rebind cycle.
#include <gtest/gtest.h>

#include <cstring>

#include "kernel/machine.h"
#include "naming/name_server.h"
#include "ppc/facility.h"
#include "ppc/stub.h"
#include "servers/copy_server.h"
#include "servers/disk_server.h"
#include "servers/exception_server.h"
#include "servers/file_server.h"

namespace hppc {
namespace {

using kernel::Cpu;
using kernel::Machine;
using kernel::Process;
using ppc::PpcFacility;
using ppc::RegSet;

class FullSystem : public ::testing::Test {
 protected:
  FullSystem()
      : machine(sim::hector_config(16)),
        ppc(machine),
        names(ppc),
        copy(ppc),
        bob(ppc, {}),
        disk(ppc, {}),
        exceptions(ppc) {}

  Process& make_client(ProgramId prog, CpuId cpu) {
    auto& as = machine.create_address_space(prog,
                                            machine.config().node_of_cpu(cpu));
    return machine.create_process(prog, &as, "client",
                                  machine.config().node_of_cpu(cpu));
  }

  Machine machine;
  PpcFacility ppc;
  naming::NameServer names;
  servers::CopyServer copy;
  servers::FileServer bob;
  servers::DiskServer disk;
  servers::ExceptionServer exceptions;
};

TEST_F(FullSystem, BootBindsWellKnownServices) {
  EXPECT_NE(ppc.entry_point(ppc::kFrankEp), nullptr);
  EXPECT_NE(ppc.entry_point(ppc::kNameServerEp), nullptr);
  EXPECT_NE(ppc.entry_point(ppc::kCopyServerEp), nullptr);
}

TEST_F(FullSystem, DiscoveryThenServiceUse) {
  Process& owner = make_client(700, 0);
  ASSERT_EQ(naming::NameServer::register_name(ppc, machine.cpu(0), owner,
                                              "bob", bob.ep()),
            Status::kOk);

  // A client on a distant station finds and uses the service.
  Process& client = make_client(100, 12);
  EntryPointId found = 0;
  ASSERT_EQ(naming::NameServer::lookup(ppc, machine.cpu(12), client, "bob",
                                       &found),
            Status::kOk);
  const auto fid = bob.create_file(3, 555);
  std::uint64_t len = 0;
  ASSERT_EQ(servers::FileServer::get_length(ppc, machine.cpu(12), client,
                                            found, fid, &len),
            Status::kOk);
  EXPECT_EQ(len, 555u);
}

TEST_F(FullSystem, BulkDataThroughCopyServer) {
  // The paper's bulk-data flow: the client grants Bob's program access to
  // its buffer; a (mock) Bob worker pulls the data via CopyFrom while
  // servicing the request.
  Process& client = make_client(100, 1);
  const SimAddr client_buf = machine.allocator().alloc(0, 256, 16);
  const char payload[] = "write me to the file";
  machine.write_data(client_buf, payload, sizeof(payload));

  ASSERT_EQ(servers::CopyServer::grant(ppc, machine.cpu(1), client,
                                       bob.program(), client_buf, 256,
                                       servers::kCopyRightRead),
            Status::kOk);

  // A service of Bob's program that pulls from the granted region.
  auto& svc_as = machine.create_address_space(bob.program(), 0);
  const SimAddr server_buf = machine.allocator().alloc(0, 256, 16);
  const EntryPointId pull = ppc.bind(
      {.name = "pull"}, &svc_as, bob.program(),
      [&](ppc::ServerCtx& ctx, RegSet& regs) {
        RegSet c;
        c[0] = ctx.caller_program();  // the granter
        ppc::set_u64(c, 1, client_buf);
        ppc::set_u64(c, 3, server_buf);
        c[5] = sizeof(payload);
        set_op(c, servers::kCopyFrom);
        set_rc(regs, ctx.call(ppc::kCopyServerEp, c));
      });
  RegSet regs;
  set_op(regs, 1);
  ASSERT_EQ(ppc.call(machine.cpu(1), client, pull, regs), Status::kOk);

  char got[sizeof(payload)] = {};
  machine.read_data(server_buf, got, sizeof(got));
  EXPECT_STREQ(got, payload);
}

TEST_F(FullSystem, MixedTrafficAcrossAllCpus) {
  // Every CPU runs a client doing file ops; CPU 5's client also reads the
  // disk; exceptions are delivered throughout; everything completes.
  const char disk_content[] = "disk block 3";
  disk.load_block(3, disk_content, sizeof(disk_content));
  const SimAddr disk_buf = machine.allocator().alloc(1, 512, 16);

  std::vector<std::uint32_t> fids;
  for (CpuId c = 0; c < 16; ++c) {
    fids.push_back(bob.create_file(machine.config().node_of_cpu(c), c * 10));
  }
  int file_ok = 0;
  bool disk_ok = false;
  for (CpuId c = 0; c < 16; ++c) {
    Process& client = make_client(100 + c, c);
    bool started = false;
    client.set_body([&, c, started](Cpu& cpu, Process& self) mutable {
      if (started) return;
      started = true;
      std::uint64_t len = 0;
      if (servers::FileServer::get_length(ppc, cpu, self, bob.ep(), fids[c],
                                          &len) == Status::kOk &&
          len == c * 10u) {
        ++file_ok;
      }
      if (c == 5) {
        servers::DiskServer::read_block(
            ppc, cpu, self, disk.ep(), 3, disk_buf,
            [&](Status s, RegSet&) { disk_ok = s == Status::kOk; });
      }
    });
    machine.ready(machine.cpu(c), client);
  }
  for (CpuId c = 0; c < 4; ++c) {
    servers::ExceptionServer::deliver(ppc, machine.cpu(c), exceptions.ep(),
                                      100 + c, 0xE);
  }
  machine.run_until_idle();

  EXPECT_EQ(file_ok, 16);
  EXPECT_TRUE(disk_ok);
  char got[sizeof(disk_content)] = {};
  machine.read_data(disk_buf, got, sizeof(got));
  EXPECT_STREQ(got, disk_content);
  for (CpuId c = 0; c < 4; ++c) {
    EXPECT_EQ(exceptions.exceptions_for(100 + c), 1u);
  }
}

TEST_F(FullSystem, OnlineReplacementUnderTraffic) {
  // Soft-kill a service, rebind the name to a new one, clients fail over.
  auto& as_v1 = machine.create_address_space(700, 0);
  const EntryPointId v1 = ppc.bind({.name = "svc"}, &as_v1, 700,
                                   [](ppc::ServerCtx&, RegSet& r) {
                                     r[0] = 1;
                                     set_rc(r, Status::kOk);
                                   });
  Process& owner = make_client(700, 0);
  ASSERT_EQ(naming::NameServer::register_name(ppc, machine.cpu(0), owner,
                                              "svc", v1),
            Status::kOk);

  Process& client = make_client(100, 2);
  ppc::ClientStub stub(ppc, machine.cpu(2), client, v1);
  Word version = 0;
  ASSERT_EQ(stub(1, version), Status::kOk);
  EXPECT_EQ(version, 1u);

  // Replace: bind v2, re-register, soft-kill v1.
  auto& as_v2 = machine.create_address_space(700, 0);
  const EntryPointId v2 = ppc.bind({.name = "svc2"}, &as_v2, 700,
                                   [](ppc::ServerCtx&, RegSet& r) {
                                     r[0] = 2;
                                     set_rc(r, Status::kOk);
                                   });
  ASSERT_EQ(naming::NameServer::unregister_name(ppc, machine.cpu(0), owner,
                                                "svc"),
            Status::kOk);
  ASSERT_EQ(naming::NameServer::register_name(ppc, machine.cpu(0), owner,
                                              "svc", v2),
            Status::kOk);
  ASSERT_EQ(ppc.soft_kill(machine.cpu(0), v1), Status::kOk);

  // Old handle now fails; re-resolution finds v2.
  EXPECT_NE(stub(1, version), Status::kOk);
  EntryPointId fresh = 0;
  ASSERT_EQ(naming::NameServer::lookup(ppc, machine.cpu(2), client, "svc",
                                       &fresh),
            Status::kOk);
  stub.retarget(fresh);
  ASSERT_EQ(stub(1, version), Status::kOk);
  EXPECT_EQ(version, 2u);
}

TEST_F(FullSystem, FrankStatsSeeTheWholeSystem) {
  Process& client = make_client(100, 0);
  const auto fid = bob.create_file(0, 1);
  std::uint64_t len;
  for (CpuId c = 0; c < 3; ++c) {
    Process& cl = make_client(200 + c, c);
    servers::FileServer::get_length(ppc, machine.cpu(c), cl, bob.ep(), fid,
                                    &len);
  }
  RegSet regs;
  regs[0] = bob.ep();
  set_op(regs, ppc::kFrankStats);
  ASSERT_EQ(ppc.call(machine.cpu(0), client, ppc::kFrankEp, regs),
            Status::kOk);
  EXPECT_EQ(regs[0], 3u);  // one Bob worker per calling CPU
  EXPECT_EQ(regs[1], 0u);
}

TEST_F(FullSystem, SystemWideLedgerConservation) {
  // Drive mixed traffic, then check: on every CPU the category sum equals
  // the clock — no cycle is ever double-charged or lost.
  const auto fid = bob.create_file(0, 1);
  std::uint64_t len;
  for (CpuId c = 0; c < 16; ++c) {
    Process& cl = make_client(300 + c, c);
    servers::FileServer::get_length(ppc, machine.cpu(c), cl, bob.ep(), fid,
                                    &len);
  }
  machine.run_until_idle();
  for (CpuId c = 0; c < 16; ++c) {
    const auto& mem = machine.cpu(c).mem();
    Cycles sum = 0;
    for (std::size_t i = 0; i < sim::kNumCostCategories; ++i) {
      sum += mem.ledger().get(static_cast<sim::CostCategory>(i));
    }
    EXPECT_EQ(sum, mem.now()) << "cpu " << c;
  }
}

}  // namespace
}  // namespace hppc
