// repl::Replicated<T>: the host seqlock replica primitive, and ReplHub's
// propagation of writes through the runtime's xcall rings.
#include "repl/replicated.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "repl/repl_hub.h"
#include "rt/runtime.h"

namespace hppc::repl {
namespace {

using obs::Counter;

TEST(Replicated, InitialValueOnEverySlot) {
  Replicated<std::uint64_t> val(4, 7);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(val.read(s), 7u);
    EXPECT_EQ(val.replica_version(s), 0u);
  }
  EXPECT_EQ(val.version(), 0u);
}

TEST(Replicated, InlineWritePublishesEveryReplica) {
  // Without a propagator the writer refreshes all replicas itself.
  Replicated<std::uint64_t> val(4, 1);
  val.write(2, [](std::uint64_t& v) { v = 9; });
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(val.read(s), 9u);
    EXPECT_EQ(val.replica_version(s), 1u);
  }
  EXPECT_EQ(val.version(), 1u);
}

TEST(Replicated, CountersBookReadsAndWrites) {
  Replicated<std::uint64_t> val(2, 0);
  obs::SlotCounters c0, c1;
  val.attach_counters(0, &c0);
  val.attach_counters(1, &c1);

  EXPECT_EQ(val.read(0), 0u);
  EXPECT_EQ(c0.get(Counter::kReplReads), 1u);
  EXPECT_EQ(c0.get(Counter::kReplSeqRetries), 0u);
  EXPECT_EQ(c0.get(Counter::kLocksTaken), 0u);  // the read path is lock-free
  EXPECT_EQ(c0.get(Counter::kSharedLinesTouched), 0u);

  val.write(1, [](std::uint64_t& v) { v = 5; });
  EXPECT_EQ(c1.get(Counter::kReplInvalidations), 2u);  // both replicas
  EXPECT_EQ(c1.get(Counter::kLocksTaken), 1u);         // the master mutex
  EXPECT_EQ(c1.get(Counter::kSharedLinesTouched), 1u);  // slot 0's line
  EXPECT_EQ(c0.get(Counter::kLocksTaken), 0u);
}

TEST(Replicated, RetryBoundFallsBackToLockedMaster) {
  // Park the replica mid-update (odd sequence word): the reader must not
  // spin forever — after kMaxSeqRetries it reads the master under its lock.
  Replicated<std::uint64_t> val(1, 7);
  obs::SlotCounters c;
  val.attach_counters(0, &c);

  ReplicatedTestAccess::begin_stall(val, 0);
  EXPECT_EQ(val.read(0), 7u);  // correct value, via the fallback
  EXPECT_EQ(c.get(Counter::kReplFallbackLocked), 1u);
  EXPECT_EQ(c.get(Counter::kLocksTaken), 1u);
  EXPECT_EQ(c.get(Counter::kReplSeqRetries),
            static_cast<std::uint64_t>(kMaxSeqRetries));
  EXPECT_EQ(c.get(Counter::kReplReads), 1u);

  ReplicatedTestAccess::end_stall(val, 0);
  EXPECT_EQ(val.read(0), 7u);  // lock-free again
  EXPECT_EQ(c.get(Counter::kReplFallbackLocked), 1u);
  EXPECT_EQ(c.get(Counter::kLocksTaken), 1u);
  EXPECT_EQ(c.get(Counter::kReplReads), 2u);
}

struct Pair {
  std::uint64_t a = 0;
  std::uint64_t b = ~std::uint64_t{0};  // invariant: b == ~a, always
};

TEST(Replicated, TornReadsNeverObserved) {
  // A writer hammers {a, ~a} pairs while a reader validates the invariant
  // on every read: any torn copy (half old, half new) breaks it. Run under
  // TSan this also proves the seqlock protocol is data-race-free.
  Replicated<Pair> val(2);
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 20000; ++i) {
      val.write(1, [i](Pair& p) {
        p.a = i;
        p.b = ~i;
      });
    }
    done.store(true, std::memory_order_release);
  });

  std::uint64_t reads = 0;
  while (!done.load(std::memory_order_acquire)) {
    const Pair p = val.read(0);
    ASSERT_EQ(p.b, ~p.a) << "torn read after " << reads << " reads";
    ++reads;
  }
  writer.join();
  const Pair last = val.read(0);
  EXPECT_EQ(last.a, 20000u);
  EXPECT_EQ(last.b, ~std::uint64_t{20000});
}

TEST(Replicated, PropagatorReplacesInlinePublish) {
  Replicated<std::uint64_t> val(4, 1);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> posts;
  val.set_propagator([&](std::uint32_t writer, std::uint32_t target,
                         std::uint64_t version) {
    posts.emplace_back(writer, target);
    EXPECT_EQ(version, 1u);
  });

  val.write(1, [](std::uint64_t& v) { v = 2; });
  ASSERT_EQ(posts.size(), 3u);  // every slot but the writer
  for (const auto& [w, t] : posts) {
    EXPECT_EQ(w, 1u);
    EXPECT_NE(t, 1u);
  }
  EXPECT_EQ(val.read(1), 2u);             // writer's replica: inline
  EXPECT_EQ(val.read(0), 1u);             // not yet pulled: bounded-stale
  EXPECT_EQ(val.replica_version(0), 0u);
  val.pull(0);
  EXPECT_EQ(val.read(0), 2u);
  EXPECT_EQ(val.replica_version(0), 1u);
}

TEST(ReplHub, WriteBurstPostsOneNudgePerSlot) {
  // Nudges are deduplicated per (object, slot): a burst of writes to a
  // never-draining slot leaves exactly one cell in its ring.
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();
  Replicated<std::uint64_t> val(rt.slots(), 0);
  ReplHub hub(rt);
  hub.manage(val);

  const auto before = rt.slot_snapshot(me);
  for (std::uint64_t i = 1; i <= 16; ++i) {
    val.write(me, [i](std::uint64_t& v) { v = i; });
  }
  const auto delta = rt.slot_snapshot(me).delta(before);
  EXPECT_EQ(delta.get(Counter::kXcallPosts), 1u);
  EXPECT_EQ(val.read(me), 16u);
  // Slot 1 never drained: stale by the ring's liveness contract.
  EXPECT_EQ(val.replica_version(1), 0u);
}

TEST(ReplHub, NudgeRefreshesOwnerAtDrain) {
  rt::Runtime rt(2);
  const rt::SlotId me = rt.register_thread();
  Replicated<std::uint64_t> val(rt.slots(), 7);
  ReplHub hub(rt);
  hub.manage(val);

  std::atomic<bool> stop{false};
  std::thread owner([&] {
    const rt::SlotId s = rt.register_thread();
    rt.serve(s, stop);
  });

  val.write(me, [](std::uint64_t& v) { v = 42; });
  for (int i = 0; i < 20000 && val.replica_version(1) < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  stop.store(true, std::memory_order_release);
  owner.join();
  EXPECT_EQ(val.replica_version(1), 1u);
  EXPECT_EQ(val.version(), 1u);
}

}  // namespace
}  // namespace hppc::repl
