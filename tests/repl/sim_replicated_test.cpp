// The simulated-facility side of the replication layer: the timeline
// seqlock cost model (sim::SimSeqlockReplica) and the value-typed wrapper
// (repl::SimReplicated) the file server's replicated record block rides.
#include "repl/sim_replicated.h"

#include <gtest/gtest.h>

#include "kernel/machine.h"
#include "sim/seqlock.h"

namespace hppc::repl {
namespace {

using obs::Counter;
using sim::CostCategory;
using sim::MachineConfig;
using sim::MemContext;
using sim::SimSeqlockReplica;

TEST(SimSeqlock, WarmReadIsTwoLocalUncachedAccesses) {
  MachineConfig mc = sim::hector_config(4);
  MemContext cpu(mc, 0);
  obs::SlotCounters c;
  cpu.set_obs(&c);
  SimSeqlockReplica sl(sim::node_base(0) + 0x100, sim::node_base(0) + 0x140);

  const auto ch = sl.read(cpu, CostCategory::kServerTime);
  EXPECT_EQ(ch.retries, 0);
  EXPECT_FALSE(ch.applied);
  // Queue-flag check + payload read, both node-local uncached.
  EXPECT_EQ(cpu.now(), 2 * mc.uncached_local_cycles);
  EXPECT_EQ(c.get(Counter::kReplReads), 1u);
  EXPECT_EQ(c.get(Counter::kReplSeqRetries), 0u);
  EXPECT_EQ(c.get(Counter::kLocksTaken), 0u);
}

TEST(SimSeqlock, ReaderInsidePublishWindowRetriesAndApplies) {
  MachineConfig mc = sim::hector_config(4);
  MemContext writer(mc, 1), reader(mc, 0);
  obs::SlotCounters c;
  reader.set_obs(&c);
  SimSeqlockReplica sl(sim::node_base(0) + 0x100, sim::node_base(0) + 0x140);

  writer.charge(CostCategory::kServerTime, 5);
  sl.publish(writer, CostCategory::kServerTime);
  ASSERT_EQ(sl.window_start(), 5u);
  ASSERT_GT(sl.window_end(), sl.window_start());

  // The reader's queue-flag access lands inside [5, 25): it observed the
  // sequence word mid-flip, retries, and waits the window out.
  const auto ch = sl.read(reader, CostCategory::kServerTime);
  EXPECT_EQ(ch.retries, 1);
  EXPECT_TRUE(ch.applied);
  EXPECT_GE(reader.now(), sl.window_end());
  EXPECT_GT(reader.ledger().get(CostCategory::kIdle), 0u);
  EXPECT_EQ(c.get(Counter::kReplSeqRetries), 1u);
  EXPECT_EQ(sl.applied_version(), 1u);
  EXPECT_FALSE(sl.has_pending());
}

TEST(SimSeqlock, ReaderBeforeWindowSeesNothingPending) {
  MachineConfig mc = sim::hector_config(4);
  MemContext writer(mc, 1), reader(mc, 0);
  SimSeqlockReplica sl(sim::node_base(0) + 0x100, sim::node_base(0) + 0x140);

  writer.charge(CostCategory::kServerTime, 500);
  sl.publish(writer, CostCategory::kServerTime);

  // The reader's clock never reaches the window: the update stays pending
  // and this read is charged like any warm read.
  const auto ch = sl.read(reader, CostCategory::kServerTime);
  EXPECT_EQ(ch.retries, 0);
  EXPECT_FALSE(ch.applied);
  EXPECT_TRUE(sl.has_pending());
  EXPECT_EQ(sl.applied_version(), 0u);
}

TEST(SimReplicated, CrossCpuVisibilityFollowsTheWindow) {
  kernel::Machine m(sim::hector_config(4));
  SimReplicated<std::uint64_t> val(m, 7);

  // Initial value everywhere.
  EXPECT_EQ(val.read(m.cpu(1).mem(), CostCategory::kServerTime).value, 7u);

  // Write from CPU 0: each CPU's update queue gets its own publish window
  // in writer-clock order.
  val.write(m.cpu(0).mem(), CostCategory::kServerTime, 42);
  EXPECT_EQ(val.master(), 42u);

  // CPU 2's clock is still at ~0, before its window: it reads the previous
  // generation — a consistent, bounded-stale value.
  EXPECT_EQ(val.read(m.cpu(2).mem(), CostCategory::kServerTime).value, 7u);

  // Once its clock passes the writer's publish, the update applies.
  m.cpu(2).mem().idle_until(m.cpu(0).now());
  const auto out = val.read(m.cpu(2).mem(), CostCategory::kServerTime);
  EXPECT_TRUE(out.applied);
  EXPECT_EQ(out.value, 42u);
  // And stays applied (no more pending work on later reads).
  EXPECT_FALSE(
      val.read(m.cpu(2).mem(), CostCategory::kServerTime).applied);
}

TEST(SimReplicated, CoalescedWritesKeepGenerationsConsistent) {
  kernel::Machine m(sim::hector_config(4));
  SimReplicated<std::uint64_t> val(m, 1);

  val.write(m.cpu(0).mem(), CostCategory::kServerTime, 2);
  m.cpu(0).mem().charge(CostCategory::kServerTime, 1000);
  val.write(m.cpu(0).mem(), CostCategory::kServerTime, 3);

  // A reader past everything sees the latest.
  m.cpu(1).mem().idle_until(m.cpu(0).now());
  EXPECT_EQ(val.read(m.cpu(1).mem(), CostCategory::kServerTime).value, 3u);

  // A reader between the two publishes sees the folded first write — never
  // a value that was never written.
  m.cpu(2).mem().idle_until(m.cpu(0).now() - 500);
  const auto mid = val.read(m.cpu(2).mem(), CostCategory::kServerTime).value;
  EXPECT_EQ(mid, 2u);
}

TEST(SimReplicated, WriterPaysForEveryReplica) {
  kernel::Machine m(sim::hector_config(16));
  SimReplicated<std::uint64_t> val(m, 0);
  auto& w = m.cpu(0).mem();
  const Cycles before = w.now();
  val.write(w, CostCategory::kServerTime, 1);
  // 2 uncached stores per replica, 16 replicas, 12 of them off-station:
  // the fan-out publish is visibly the writer's cost.
  EXPECT_GE(w.now() - before, 16u * 2u * sim::hector_config(16).uncached_local_cycles);
  EXPECT_EQ(m.cpu(0).counters().get(Counter::kReplInvalidations), 16u);
}

TEST(SimReplicated, DeterministicAcrossRuns) {
  auto run = [] {
    kernel::Machine m(sim::hector_config(4));
    SimReplicated<std::uint64_t> val(m, 1);
    val.write(m.cpu(0).mem(), CostCategory::kServerTime, 2);
    std::uint64_t sum = 0;
    for (CpuId c = 0; c < 4; ++c) {
      m.cpu(c).mem().charge(CostCategory::kServerTime, 100 * (c + 1));
      sum += val.read(m.cpu(c).mem(), CostCategory::kServerTime).value;
      sum += m.cpu(c).mem().now();
    }
    return sum;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hppc::repl
