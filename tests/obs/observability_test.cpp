// The observability layer's own contract: the zero-contention invariant on
// the warm path (the paper's §1/§2 claim as a measured fact), the derived
// pool counters, the registry merge, the bounded trace ring, and the
// machine-readable bench report.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "kernel/machine.h"
#include "obs/bench_metrics.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "ppc/facility.h"
#include "rt/runtime.h"
#include "sim/config.h"

namespace hppc {
namespace {

using obs::Counter;
using obs::CounterSnapshot;

// ---------------------------------------------------------------------------
// Zero-contention invariant, simulated facility
// ---------------------------------------------------------------------------

TEST(ZeroContention, WarmNullPpcOnSimFacility) {
  kernel::Machine machine(sim::hector_config(4));
  ppc::PpcFacility facility(machine);
  auto& server_as = machine.create_address_space(700, 0);
  const EntryPointId ep =
      facility.bind({.name = "null"}, &server_as, 700,
                    [](ppc::ServerCtx&, ppc::RegSet& r) {
                      ppc::set_rc(r, Status::kOk);
                    });
  auto& as = machine.create_address_space(100, 0);
  kernel::Process& client = machine.create_process(100, &as, "client", 0);

  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  // Warmup: the first call may grow pools through Frank (slow path).
  ASSERT_EQ(facility.call(machine.cpu(0), client, ep, regs), Status::kOk);

  const CounterSnapshot warm = machine.cpu(0).counters().snapshot();
  constexpr int kCalls = 100;
  for (int i = 0; i < kCalls; ++i) {
    ppc::set_op(regs, 1);
    ASSERT_EQ(facility.call(machine.cpu(0), client, ep, regs), Status::kOk);
  }
  const CounterSnapshot delta =
      machine.cpu(0).counters().snapshot().delta(warm);

  // The paper's central claim, now a measured invariant: after warmup the
  // fast path takes no locks and touches no shared cache lines.
  EXPECT_EQ(delta.get(Counter::kLocksTaken), 0u);
  EXPECT_EQ(delta.get(Counter::kSharedLinesTouched), 0u);
  EXPECT_EQ(delta.get(Counter::kSlowPathEntries), 0u);
  EXPECT_EQ(delta.get(Counter::kCallsSync), static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(delta.get(Counter::kWorkerPoolHits),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(delta.get(Counter::kCdRecycles),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(delta.get(Counter::kWorkersCreated), 0u);
  EXPECT_EQ(delta.get(Counter::kCdsCreated), 0u);
}

TEST(ZeroContention, SimColdPathIsBooked) {
  // The complement: the operations the warm path avoids really are booked
  // when they happen (pool growth on the first call).
  kernel::Machine machine(sim::hector_config(2));
  ppc::PpcFacility facility(machine);
  auto& server_as = machine.create_address_space(700, 0);
  const EntryPointId ep =
      facility.bind({.name = "null"}, &server_as, 700,
                    [](ppc::ServerCtx&, ppc::RegSet& r) {
                      ppc::set_rc(r, Status::kOk);
                    });
  auto& as = machine.create_address_space(100, 0);
  kernel::Process& client = machine.create_process(100, &as, "client", 0);

  const CounterSnapshot before = machine.cpu(0).counters().snapshot();
  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  ASSERT_EQ(facility.call(machine.cpu(0), client, ep, regs), Status::kOk);
  const CounterSnapshot delta =
      machine.cpu(0).counters().snapshot().delta(before);

  EXPECT_GE(delta.get(Counter::kSlowPathEntries), 1u);
  EXPECT_GE(delta.get(Counter::kFrankWorkerRefills), 1u);
  EXPECT_GE(delta.get(Counter::kWorkersCreated), 1u);
}

// ---------------------------------------------------------------------------
// Zero-contention invariant, host runtime
// ---------------------------------------------------------------------------

TEST(ZeroContention, WarmNullPpcOnHostRuntime) {
  rt::Runtime rt(1);
  const rt::SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {.name = "null"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });

  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);  // warmup

  const CounterSnapshot warm = rt.snapshot();
  constexpr int kCalls = 100;
  for (int i = 0; i < kCalls; ++i) {
    ppc::set_op(regs, 1);
    ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);
  }
  const CounterSnapshot delta = rt.snapshot().delta(warm);

  EXPECT_EQ(delta.get(Counter::kLocksTaken), 0u);
  EXPECT_EQ(delta.get(Counter::kSharedLinesTouched), 0u);
  EXPECT_EQ(delta.get(Counter::kSlowPathEntries), 0u);
  EXPECT_EQ(delta.get(Counter::kCallsSync), static_cast<std::uint64_t>(kCalls));
  // Pool counters are derived at snapshot time from the conservation
  // identities (each call takes exactly one worker and one CD).
  EXPECT_EQ(delta.get(Counter::kWorkerPoolHits),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(delta.get(Counter::kCdRecycles),
            static_cast<std::uint64_t>(kCalls));
}

TEST(ZeroContention, HostHistogramsAreOnAndLockFree) {
  // Runtime::call is the full-instrumentation path: the RTT histogram is
  // always on. The warm invariant must hold regardless — a histogram record
  // is a single-writer store on an owned line, never a lock — and every
  // warm call must land exactly one rtt_sync sample.
  rt::Runtime rt(1);
  const rt::SlotId slot = rt.register_thread();
  const EntryPointId ep = rt.bind(
      {.name = "null"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });

  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);  // warmup

  const CounterSnapshot warm = rt.snapshot();
  const obs::HistSnapshot hwarm = rt.hist_snapshot(slot);
  constexpr int kCalls = 100;
  for (int i = 0; i < kCalls; ++i) {
    ppc::set_op(regs, 1);
    ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);
  }
  const CounterSnapshot delta = rt.snapshot().delta(warm);
  const obs::HistSnapshot hdelta = rt.hist_snapshot(slot).delta(hwarm);

  EXPECT_EQ(delta.get(Counter::kLocksTaken), 0u);
  EXPECT_EQ(delta.get(Counter::kSharedLinesTouched), 0u);
  EXPECT_EQ(hdelta.count(obs::Hist::kRttSync),
            static_cast<std::uint64_t>(kCalls));
}

TEST(ZeroContention, SimHistogramsRecordDeterministicCycles) {
  // The facility's warm path records whole-call latency in SIMULATED
  // cycles: same schedule, same distribution, and the samples never charge
  // the simulated clock (the call cost is unchanged by observation).
  kernel::Machine machine(sim::hector_config(1));
  ppc::PpcFacility facility(machine);
  auto& server_as = machine.create_address_space(700, 0);
  const EntryPointId ep =
      facility.bind({.name = "null"}, &server_as, 700,
                    [](ppc::ServerCtx&, ppc::RegSet& r) {
                      ppc::set_rc(r, Status::kOk);
                    });
  auto& as = machine.create_address_space(100, 0);
  kernel::Process& client = machine.create_process(100, &as, "client", 0);

  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  ASSERT_EQ(facility.call(machine.cpu(0), client, ep, regs), Status::kOk);

  const obs::HistSnapshot warm = machine.cpu(0).histograms().snapshot();
  constexpr int kCalls = 50;
  for (int i = 0; i < kCalls; ++i) {
    ppc::set_op(regs, 1);
    ASSERT_EQ(facility.call(machine.cpu(0), client, ep, regs), Status::kOk);
  }
  const obs::HistSnapshot delta =
      machine.cpu(0).histograms().snapshot().delta(warm);
  EXPECT_EQ(delta.count(obs::Hist::kRttSync),
            static_cast<std::uint64_t>(kCalls));
  // Identical warm calls cost identical simulated cycles: exactly one
  // bucket is populated.
  int populated = 0;
  for (std::uint64_t c : delta.b[static_cast<std::size_t>(obs::Hist::kRttSync)]) {
    populated += c != 0;
  }
  EXPECT_EQ(populated, 1);
}

TEST(ZeroContention, HostHoldCdServiceCountsHits) {
  rt::Runtime rt(1);
  const rt::SlotId slot = rt.register_thread();
  rt::RtServiceConfig cfg;
  cfg.name = "held";
  cfg.hold_cd = true;
  const EntryPointId ep = rt.bind(
      cfg, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });

  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);  // warmup

  const CounterSnapshot warm = rt.slot_snapshot(slot);
  constexpr int kCalls = 50;
  for (int i = 0; i < kCalls; ++i) {
    ppc::set_op(regs, 1);
    ASSERT_EQ(rt.call(slot, 1, ep, regs), Status::kOk);
  }
  const CounterSnapshot delta = rt.slot_snapshot(slot).delta(warm);

  EXPECT_EQ(delta.get(Counter::kHoldCdHits),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(delta.get(Counter::kCdRecycles), 0u);  // held, never recycled
  EXPECT_EQ(delta.get(Counter::kLocksTaken), 0u);
  EXPECT_EQ(delta.get(Counter::kSharedLinesTouched), 0u);
}

TEST(ZeroContention, HostSlowPathsAreBookedOnSharedBlock) {
  rt::Runtime rt(1);
  const CounterSnapshot before = rt.shared_counters().snapshot();
  rt.bind({.name = "a"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
    ppc::set_rc(regs, Status::kOk);
  });
  const CounterSnapshot after = rt.shared_counters().snapshot();
  const CounterSnapshot delta = after.delta(before);
  EXPECT_EQ(delta.get(Counter::kBinds), 1u);
  EXPECT_GE(delta.get(Counter::kLocksTaken), 1u);
  EXPECT_GE(delta.get(Counter::kSharedLinesTouched), 1u);
}

// ---------------------------------------------------------------------------
// Per-slot merge semantics
// ---------------------------------------------------------------------------

TEST(Counters, RegistryMergesSlotsAndShared) {
  obs::SlotCounters a;
  obs::SlotCounters b;
  obs::SharedCounters shared;
  a.inc(Counter::kCallsSync, 3);
  a.inc(Counter::kWorkersCreated);
  b.inc(Counter::kCallsSync, 2);
  b.inc(Counter::kCallsAsync, 5);
  shared.inc(Counter::kBinds, 7);

  obs::Registry reg;
  reg.add_slot("cpu0", &a);
  reg.add_slot("cpu1", &b);
  reg.set_shared(&shared);

  ASSERT_EQ(reg.num_slots(), 2u);
  EXPECT_EQ(reg.slot_label(0), "cpu0");
  EXPECT_EQ(reg.slot_snapshot(1).get(Counter::kCallsAsync), 5u);

  const CounterSnapshot total = reg.aggregate();
  EXPECT_EQ(total.get(Counter::kCallsSync), 5u);
  EXPECT_EQ(total.get(Counter::kWorkersCreated), 1u);
  EXPECT_EQ(total.get(Counter::kCallsAsync), 5u);
  EXPECT_EQ(total.get(Counter::kBinds), 7u);

  // The headline invariants are always present in the JSON, even at zero,
  // so a clean run reads as an assertion rather than an omission.
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"locks_taken\":0"), std::string::npos);
  EXPECT_NE(json.find("\"shared_lines_touched\":0"), std::string::npos);
  EXPECT_NE(json.find("\"cpu1\""), std::string::npos);
}

TEST(Counters, RuntimeSnapshotMergesPerSlotBlocks) {
  // Two slots, driven from one thread (slots are addressed explicitly);
  // the machine-wide snapshot must equal the sum of the per-slot views.
  rt::Runtime rt(2);
  const EntryPointId ep = rt.bind(
      {.name = "null"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
  ppc::RegSet regs;
  for (int i = 0; i < 4; ++i) {
    ppc::set_op(regs, 1);
    ASSERT_EQ(rt.call(0, 1, ep, regs), Status::kOk);
  }
  for (int i = 0; i < 9; ++i) {
    ppc::set_op(regs, 1);
    ASSERT_EQ(rt.call(1, 1, ep, regs), Status::kOk);
  }
  EXPECT_EQ(rt.slot_snapshot(0).get(Counter::kCallsSync), 4u);
  EXPECT_EQ(rt.slot_snapshot(1).get(Counter::kCallsSync), 9u);
  EXPECT_EQ(rt.snapshot().get(Counter::kCallsSync), 13u);
  // bind() booked its lock on the shared block; the merged view keeps it
  // while the per-slot views stay clean.
  EXPECT_GE(rt.snapshot().get(Counter::kLocksTaken), 1u);
  EXPECT_EQ(rt.slot_snapshot(0).get(Counter::kLocksTaken), 0u);
}

TEST(Counters, DeltaSaturatesInsteadOfWrapping) {
  CounterSnapshot a;
  CounterSnapshot b;
  a.v[static_cast<std::size_t>(Counter::kCallsSync)] = 3;
  b.v[static_cast<std::size_t>(Counter::kCallsSync)] = 5;
  EXPECT_EQ(a.delta(b).get(Counter::kCallsSync), 0u);  // not 2^64 - 2
  EXPECT_EQ(b.delta(a).get(Counter::kCallsSync), 2u);
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

TEST(TraceRing, RetainsOrderAndWraps) {
  obs::TraceRing ring;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(i, 0, obs::TraceEvent::kCallEnter, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(ring.size(), 10u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 10u);
  EXPECT_EQ(snap.front().ts, 0u);
  EXPECT_EQ(snap.back().ts, 9u);

  // Overfill: the ring stays bounded and keeps the newest records.
  const std::uint64_t total = obs::TraceRing::kCapacity + 5;
  ring.reset();
  for (std::uint64_t i = 0; i < total; ++i) {
    ring.record(i, 0, obs::TraceEvent::kCallExit, 0);
  }
  EXPECT_EQ(ring.size(), obs::TraceRing::kCapacity);
  EXPECT_EQ(ring.total_recorded(), total);
  snap = ring.snapshot();
  ASSERT_EQ(snap.size(), obs::TraceRing::kCapacity);
  EXPECT_EQ(snap.front().ts, 5u);  // 5 oldest were overwritten
  EXPECT_EQ(snap.back().ts, total - 1);
}

TEST(TraceRing, ChromeExportNamesEvents) {
  obs::TraceRing ring;
  ring.record(1000, 2, obs::TraceEvent::kCallEnter, 42);
  ring.record(2000, 2, obs::TraceEvent::kCallExit, 0);
  const std::string chrome =
      obs::trace_to_chrome_json({{"cpu2", &ring}}, 1000.0);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("call_enter"), std::string::npos);
  const std::string plain = obs::trace_to_json({{"cpu2", &ring}});
  EXPECT_NE(plain.find("call_exit"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bench report sink
// ---------------------------------------------------------------------------

TEST(BenchReport, WritesWellFormedJsonWhereTold) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("HPPC_BENCH_DIR", dir.c_str(), /*overwrite=*/1), 0);

  obs::BenchReport report("obs_selftest");
  report.meta("unit", "ns");
  report.scalar("answer", 42.0);
  Percentiles p;
  for (int i = 1; i <= 1000; ++i) p.add(static_cast<double>(i));
  report.series("lat", p);
  report.row("tbl").cell("cpus", 4).cell("rate", 2.5);
  CounterSnapshot snap;
  snap.v[static_cast<std::size_t>(Counter::kCallsSync)] = 17;
  report.counters("warm", snap);

  ASSERT_TRUE(report.write());
  const std::string written_path = report.path();  // resolved under $HPPC_BENCH_DIR
  unsetenv("HPPC_BENCH_DIR");

  std::ifstream in(written_path);
  ASSERT_TRUE(in.good()) << written_path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  EXPECT_NE(json.find("\"bench\":\"obs_selftest\""), std::string::npos);
  EXPECT_NE(json.find("\"answer\":42"), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  EXPECT_NE(json.find("\"calls_sync\":17"), std::string::npos);
  // Structural sanity: braces and brackets balance.
  int braces = 0, brackets = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_str = !in_str;
    if (in_str) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  std::remove(written_path.c_str());
}

TEST(BenchReport, EscapesAndSanitizesNumbers) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::json_number(0.0 / 1.0), "0");
  // Non-finite values must not leak into the JSON.
  const std::string inf = obs::json_number(1.0 / 0.0);
  EXPECT_EQ(inf.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace hppc
