// The histogram layer's contract: log2 bucket geometry, snapshot
// merge/delta algebra matching the counter discipline, quantile behaviour,
// and — under TSan — that concurrent per-slot writers plus a live
// snapshotting reader are race-free and lose nothing once the writers join.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/counters.h"
#include "obs/histogram.h"

namespace hppc {
namespace {

using obs::Hist;
using obs::HistSnapshot;
using obs::SlotHistograms;

// ---------------------------------------------------------------------------
// Bucket geometry
// ---------------------------------------------------------------------------

TEST(HistBuckets, Log2GeometryHoldsAtTheEdges) {
  EXPECT_EQ(obs::hist_bucket_of(0), 0u);
  EXPECT_EQ(obs::hist_bucket_of(1), 1u);
  EXPECT_EQ(obs::hist_bucket_of(2), 2u);
  EXPECT_EQ(obs::hist_bucket_of(3), 2u);
  EXPECT_EQ(obs::hist_bucket_of(4), 3u);
  EXPECT_EQ(obs::hist_bucket_of((1ull << 62) - 1), 62u);
  // The top bucket is open-ended: everything with bit_width >= 63 lands
  // there instead of indexing out of range.
  EXPECT_EQ(obs::hist_bucket_of(1ull << 62), obs::kHistBuckets - 1);
  EXPECT_EQ(obs::hist_bucket_of(~0ull), obs::kHistBuckets - 1);
}

TEST(HistBuckets, EveryValueFallsInsideItsBucketBounds) {
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 8ull, 1000ull,
                          65535ull, 65536ull, (1ull << 40) + 17}) {
    const std::size_t b = obs::hist_bucket_of(v);
    EXPECT_GE(v, obs::hist_bucket_lo(b)) << v;
    if (b < obs::kHistBuckets - 1) {
      EXPECT_LT(v, obs::hist_bucket_hi(b)) << v;
    }
  }
}

TEST(HistBuckets, EveryHistHasAName) {
  for (std::size_t i = 0; i < obs::kNumHists; ++i) {
    EXPECT_STRNE(obs::hist_name(static_cast<Hist>(i)), "unknown");
  }
}

// ---------------------------------------------------------------------------
// Record / snapshot / merge / delta
// ---------------------------------------------------------------------------

TEST(Histograms, RecordCountsPerBucketAndPerHist) {
  SlotHistograms h;
  h.record(Hist::kRttSync, 0);
  h.record(Hist::kRttSync, 5);   // bucket 3
  h.record(Hist::kRttSync, 6);   // bucket 3
  h.record(Hist::kRingWait, 100);
  EXPECT_EQ(h.count(Hist::kRttSync), 3u);
  EXPECT_EQ(h.count(Hist::kRingWait), 1u);
  EXPECT_EQ(h.count(Hist::kWakeup), 0u);
  const HistSnapshot s = h.snapshot();
  EXPECT_EQ(s.b[static_cast<std::size_t>(Hist::kRttSync)][0], 1u);
  EXPECT_EQ(s.b[static_cast<std::size_t>(Hist::kRttSync)][3], 2u);
}

TEST(Histograms, MergeIsBucketwiseSum) {
  SlotHistograms a;
  SlotHistograms b;
  a.record(Hist::kDrainBatch, 4);
  a.record(Hist::kDrainBatch, 4);
  b.record(Hist::kDrainBatch, 4);
  b.record(Hist::kServerExec, 9);
  HistSnapshot m = a.snapshot();
  m.merge(b.snapshot());
  EXPECT_EQ(m.count(Hist::kDrainBatch), 3u);
  EXPECT_EQ(m.count(Hist::kServerExec), 1u);
}

TEST(Histograms, DeltaSaturatesLikeCounters) {
  SlotHistograms h;
  h.record(Hist::kRttRemote, 10);
  const HistSnapshot early = h.snapshot();
  h.record(Hist::kRttRemote, 10);
  h.record(Hist::kRttRemote, 1000);
  const HistSnapshot late = h.snapshot();
  const HistSnapshot d = late.delta(early);
  EXPECT_EQ(d.count(Hist::kRttRemote), 2u);
  // Reversed order saturates at zero instead of wrapping.
  EXPECT_EQ(early.delta(late).count(Hist::kRttRemote), 0u);
}

TEST(Histograms, ResetClearsEverything) {
  SlotHistograms h;
  h.record(Hist::kRttAsync, 42);
  h.reset();
  EXPECT_EQ(h.snapshot(), HistSnapshot{});
}

// ---------------------------------------------------------------------------
// Quantiles
// ---------------------------------------------------------------------------

TEST(Histograms, QuantileIsExactForSingleBucketData) {
  SlotHistograms h;
  for (int i = 0; i < 100; ++i) h.record(Hist::kWakeup, 0);
  // Everything in bucket 0 ([0, 1)): any quantile lands inside it.
  const HistSnapshot s = h.snapshot();
  EXPECT_GE(s.quantile(Hist::kWakeup, 0.5), 0.0);
  EXPECT_LT(s.quantile(Hist::kWakeup, 0.99), 1.0);
}

TEST(Histograms, QuantileRespectsBucketOrdering) {
  SlotHistograms h;
  for (int i = 0; i < 90; ++i) h.record(Hist::kRttSync, 100);    // bucket 7
  for (int i = 0; i < 10; ++i) h.record(Hist::kRttSync, 10000);  // bucket 14
  const HistSnapshot s = h.snapshot();
  const double p50 = s.quantile(Hist::kRttSync, 0.50);
  const double p99 = s.quantile(Hist::kRttSync, 0.99);
  // p50 must sit in the low bucket's range, p99 in the high one's; the
  // factor-of-two bucket width is the advertised error bound.
  EXPECT_GE(p50, 64.0);
  EXPECT_LT(p50, 128.0);
  EXPECT_GE(p99, 8192.0);
  EXPECT_LT(p99, 16384.0);
  EXPECT_LE(p50, p99);
}

TEST(Histograms, QuantileAndMeanOfEmptyAreZero) {
  const HistSnapshot s;
  EXPECT_EQ(s.quantile(Hist::kRttSync, 0.5), 0.0);
  EXPECT_EQ(s.mean(Hist::kRttSync), 0.0);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan tests): per-slot single writers + live reader
// ---------------------------------------------------------------------------

TEST(HistogramsConcurrency, PerSlotWritersMergeToExactSum) {
  // N writer threads, each the single writer of its OWN block (the per-slot
  // discipline), while a reader merges live snapshots the whole time. TSan
  // must stay quiet, and after the join the merged total must equal the sum
  // of per-slot deltas — nothing torn, nothing lost.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50'000;
  std::vector<SlotHistograms> blocks(kWriters);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      HistSnapshot live;
      for (const auto& blk : blocks) live.merge(blk.snapshot());
      // Monotone sanity only — the live view may be mid-update.
      EXPECT_LE(live.count(Hist::kRttSync),
                static_cast<std::uint64_t>(kWriters) * kPerWriter);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        blocks[w].record(Hist::kRttSync,
                         static_cast<std::uint64_t>(i) * (w + 1));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  HistSnapshot total;
  for (const auto& blk : blocks) total.merge(blk.snapshot());
  EXPECT_EQ(total.count(Hist::kRttSync),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(CountersConcurrency, SlotWritersAndLiveSnapshotsAgreeAfterJoin) {
  // Same shape for the counter blocks: concurrent CounterSnapshot merges
  // against live single-writer increments must be TSan-clean, and the final
  // merge must equal the sum of per-slot deltas.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 100'000;
  std::vector<obs::SlotCounters> blocks(kWriters);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      obs::CounterSnapshot live;
      for (const auto& blk : blocks) live.merge(blk.snapshot());
      EXPECT_LE(live.get(obs::Counter::kCallsSync),
                static_cast<std::uint64_t>(kWriters) * kPerWriter);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        blocks[w].inc(obs::Counter::kCallsSync);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  obs::CounterSnapshot total;
  for (const auto& blk : blocks) total.merge(blk.snapshot());
  EXPECT_EQ(total.get(obs::Counter::kCallsSync),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

}  // namespace
}  // namespace hppc
