// The telemetry derivation layer, tested as pure functions: synthetic
// SlotWindows in, checked drain-rate / queueing-delay / quantile series
// out, plus the JSON shape the exporter promises.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"

namespace hppc {
namespace {

using obs::Counter;
using obs::Hist;
using obs::SlotWindow;

SlotWindow make_window(std::uint32_t slot, double window_s) {
  SlotWindow w;
  w.slot = slot;
  w.window_s = window_s;
  return w;
}

void set_counter(SlotWindow& w, Counter c, std::uint64_t v) {
  w.counters.v[static_cast<std::size_t>(c)] = v;
}

TEST(Telemetry, DrainRateIsCellsOverWindow) {
  SlotWindow w = make_window(0, 2.0);
  set_counter(w, Counter::kXcallCellsDrained, 1000);
  set_counter(w, Counter::kXcallBatches, 250);
  const obs::SlotSeries s = obs::derive_slot_series(w);
  EXPECT_DOUBLE_EQ(s.drain_rate_per_sec, 500.0);
  EXPECT_DOUBLE_EQ(s.mean_drain_batch, 4.0);
}

TEST(Telemetry, QueueDelayIsLittlesLaw) {
  // occupancy 4 cells at 1000 cells/s drained -> 4 ms of queueing.
  SlotWindow w = make_window(0, 1.0);
  set_counter(w, Counter::kXcallCellsDrained, 1000);
  w.occupancy_ewma = 4.0;
  const obs::SlotSeries s = obs::derive_slot_series(w);
  EXPECT_NEAR(s.est_queue_delay_ns, 4e6, 1.0);
}

TEST(Telemetry, EmptyWindowDerivesAllZeros) {
  const obs::SlotSeries s = obs::derive_slot_series(make_window(3, 0.0));
  EXPECT_EQ(s.slot, 3u);
  EXPECT_EQ(s.calls, 0u);
  EXPECT_DOUBLE_EQ(s.drain_rate_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(s.est_queue_delay_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.rtt_remote_p50_ns, 0.0);
}

TEST(Telemetry, CallsSumAllClasses) {
  SlotWindow w = make_window(0, 1.0);
  set_counter(w, Counter::kCallsSync, 10);
  set_counter(w, Counter::kCallsAsync, 20);
  set_counter(w, Counter::kCallsRemote, 30);
  EXPECT_EQ(obs::derive_slot_series(w).calls, 60u);
}

TEST(Telemetry, QuantilesCalibrateCyclesToNanoseconds) {
  SlotWindow w = make_window(0, 1.0);
  w.cycles_per_ns = 2.0;  // 2 GHz
  // All samples in bucket 11: [1024, 2048) cycles -> [512, 1024) ns.
  for (int i = 0; i < 100; ++i) {
    w.hists.b[static_cast<std::size_t>(Hist::kRttRemote)][11] += 1;
  }
  const obs::SlotSeries s = obs::derive_slot_series(w);
  EXPECT_GE(s.rtt_remote_p50_ns, 512.0);
  EXPECT_LT(s.rtt_remote_p50_ns, 1024.0);
}

TEST(Telemetry, UncalibratedTicksExportRaw) {
  SlotWindow w = make_window(0, 1.0);
  w.cycles_per_ns = 0.0;  // no calibration -> raw ticks
  for (int i = 0; i < 100; ++i) {
    w.hists.b[static_cast<std::size_t>(Hist::kRttRemote)][11] += 1;
  }
  const obs::SlotSeries s = obs::derive_slot_series(w);
  EXPECT_GE(s.rtt_remote_p50_ns, 1024.0);
  EXPECT_LT(s.rtt_remote_p50_ns, 2048.0);
}

TEST(Telemetry, FleetTotalsSumSlotsAndReapplyLittlesLaw) {
  std::vector<SlotWindow> ws;
  for (std::uint32_t s = 0; s < 2; ++s) {
    SlotWindow w = make_window(s, 1.0);
    set_counter(w, Counter::kXcallCellsDrained, 500);
    w.occupancy_ewma = 1.0;
    ws.push_back(w);
  }
  const obs::Telemetry t = obs::derive_telemetry(ws);
  ASSERT_EQ(t.slots.size(), 2u);
  EXPECT_EQ(t.total_drained_cells, 1000u);
  EXPECT_DOUBLE_EQ(t.total_drain_rate_per_sec, 1000.0);
  EXPECT_DOUBLE_EQ(t.total_occupancy_ewma, 2.0);
  EXPECT_NEAR(t.est_queue_delay_ns, 2e6, 1.0);
}

TEST(Telemetry, TraceDropsRideTheSeries) {
  SlotWindow w = make_window(0, 1.0);
  set_counter(w, Counter::kTraceDrops, 7);
  EXPECT_EQ(obs::derive_slot_series(w).trace_drops, 7u);
}

TEST(Telemetry, ShmCountersSumIntoTotalsAndRate) {
  // The cross-process transport's counters aggregate across slots, and
  // bulk bandwidth is derived over the window: 20 MB in 2 s -> 10 MB/s.
  std::vector<SlotWindow> ws;
  for (std::uint32_t s = 0; s < 2; ++s) {
    SlotWindow w = make_window(s, 2.0);
    set_counter(w, Counter::kShmSegmentsMapped, 3);
    set_counter(w, Counter::kBulkCopyBytes, 10'000'000);
    set_counter(w, Counter::kHeartbeatsMissed, 2);
    set_counter(w, Counter::kPeerDeaths, 1);
    ws.push_back(w);
  }
  const obs::Telemetry t = obs::derive_telemetry(ws);
  EXPECT_EQ(t.shm_segments_mapped, 6u);
  EXPECT_EQ(t.bulk_copy_bytes, 20'000'000u);
  EXPECT_EQ(t.heartbeats_missed, 4u);
  EXPECT_EQ(t.peer_deaths, 2u);
  EXPECT_DOUBLE_EQ(t.bulk_copy_mbps, 10.0);
}

TEST(Telemetry, JsonExportCarriesEveryPromisedField) {
  std::vector<SlotWindow> ws;
  SlotWindow w = make_window(0, 1.0);
  set_counter(w, Counter::kXcallCellsDrained, 100);
  set_counter(w, Counter::kCallsSync, 5);
  w.occupancy_ewma = 0.5;
  ws.push_back(w);
  const std::string json = obs::telemetry_to_json(obs::derive_telemetry(ws));
  for (const char* field :
       {"\"window_s\":", "\"totals\":", "\"drained_cells\":",
        "\"drain_rate_per_sec\":", "\"occupancy_ewma\":",
        "\"est_queue_delay_ns\":", "\"slots\":", "\"slot\":", "\"calls\":",
        "\"drain_batches\":", "\"mean_drain_batch\":",
        "\"rtt_remote_p50_ns\":", "\"rtt_remote_p99_ns\":",
        "\"wakeup_p99_ns\":", "\"trace_drops\":", "\"shm_segments_mapped\":",
        "\"bulk_copy_bytes\":", "\"bulk_copy_mbps\":",
        "\"heartbeats_missed\":", "\"peer_deaths\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << "\n" << json;
  }
  // Structural sanity: braces and brackets balance.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace hppc
