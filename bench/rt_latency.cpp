// Host-library latency (google-benchmark): the PPC pattern's fast path
// against a global locked pool and a message-queue server on this machine.
//
// NOTE: this container exposes a single CPU, so these are per-call latency
// numbers, not scalability curves — the simulator benches cover scaling.
#include <benchmark/benchmark.h>

#include "rt/global_pool.h"
#include "rt/msgq.h"
#include "rt/runtime.h"

using namespace hppc;

namespace {

void BM_RtPpcCall(benchmark::State& state) {
  rt::Runtime rt_(1);
  const rt::SlotId slot = rt_.register_thread();
  const EntryPointId ep = rt_.bind(
      {.name = "null"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
        ppc::set_rc(regs, Status::kOk);
      });
  ppc::RegSet regs;
  for (auto _ : state) {
    ppc::set_op(regs, 1);
    benchmark::DoNotOptimize(rt_.call(slot, 1, ep, regs));
  }
}
BENCHMARK(BM_RtPpcCall);

void BM_RtPpcCallHoldCd(benchmark::State& state) {
  rt::Runtime rt_(1);
  const rt::SlotId slot = rt_.register_thread();
  rt::RtServiceConfig cfg;
  cfg.hold_cd = true;
  const EntryPointId ep = rt_.bind(cfg, 700,
                                   [](rt::RtCtx&, ppc::RegSet& regs) {
                                     ppc::set_rc(regs, Status::kOk);
                                   });
  ppc::RegSet regs;
  for (auto _ : state) {
    ppc::set_op(regs, 1);
    benchmark::DoNotOptimize(rt_.call(slot, 1, ep, regs));
  }
}
BENCHMARK(BM_RtPpcCallHoldCd);

void BM_RtPpcCallWithStackUse(benchmark::State& state) {
  rt::Runtime rt_(1);
  const rt::SlotId slot = rt_.register_thread();
  const EntryPointId ep = rt_.bind(
      {.name = "stack"}, 700, [](rt::RtCtx& ctx, ppc::RegSet& regs) {
        auto stack = ctx.stack();
        for (int i = 0; i < 256; i += 64) stack[i] = std::byte{1};
        ppc::set_rc(regs, Status::kOk);
      });
  ppc::RegSet regs;
  for (auto _ : state) {
    ppc::set_op(regs, 1);
    benchmark::DoNotOptimize(rt_.call(slot, 1, ep, regs));
  }
}
BENCHMARK(BM_RtPpcCallWithStackUse);

void BM_RtAsyncCallPlusPoll(benchmark::State& state) {
  rt::Runtime rt_(1);
  const rt::SlotId slot = rt_.register_thread();
  const EntryPointId ep = rt_.bind(
      {.name = "null"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
        ppc::set_rc(regs, Status::kOk);
      });
  ppc::RegSet regs;
  for (auto _ : state) {
    ppc::set_op(regs, 1);
    rt_.call_async(slot, 1, ep, regs);
    benchmark::DoNotOptimize(rt_.poll(slot));
  }
}
BENCHMARK(BM_RtAsyncCallPlusPoll);

void BM_GlobalPoolCall(benchmark::State& state) {
  rt::GlobalPoolRuntime rt_;
  const EntryPointId ep = rt_.bind([](ProgramId, ppc::RegSet& regs) {
    ppc::set_rc(regs, Status::kOk);
  });
  ppc::RegSet regs;
  for (auto _ : state) {
    ppc::set_op(regs, 1);
    benchmark::DoNotOptimize(rt_.call(1, ep, regs));
  }
}
BENCHMARK(BM_GlobalPoolCall);

void BM_MsgQueueCall(benchmark::State& state) {
  rt::MsgQueueServer server(1, [](ppc::RegSet& regs) {
    ppc::set_rc(regs, Status::kOk);
  });
  ppc::RegSet regs;
  for (auto _ : state) {
    ppc::set_op(regs, 1);
    benchmark::DoNotOptimize(server.call(regs));
  }
}
BENCHMARK(BM_MsgQueueCall);

// Multi-threaded variants: on a multi-core host each thread gets its own
// slot and the per-slot design shows flat per-call latency as threads are
// added; the global pool contends. (This container has one CPU, so here
// they merely demonstrate correctness under preemption.)
void BM_RtPpcCallThreaded(benchmark::State& state) {
  // Shared across all worker threads and all calibration trials: magic
  // statics are thread-safe, and the slot capacity is sized for every
  // thread google-benchmark may spawn across trials.
  static rt::Runtime shared_rt(256);
  static const EntryPointId ep = shared_rt.bind(
      {.name = "null"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
  const rt::SlotId slot = shared_rt.register_thread();
  ppc::RegSet regs;
  for (auto _ : state) {
    ppc::set_op(regs, 1);
    benchmark::DoNotOptimize(shared_rt.call(slot, 1, ep, regs));
  }
}
BENCHMARK(BM_RtPpcCallThreaded)->Threads(1)->Threads(2)->Threads(4);

void BM_GlobalPoolCallThreaded(benchmark::State& state) {
  static rt::GlobalPoolRuntime shared_rt;
  static const EntryPointId ep = shared_rt.bind(
      [](ProgramId, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
  ppc::RegSet regs;
  for (auto _ : state) {
    ppc::set_op(regs, 1);
    benchmark::DoNotOptimize(shared_rt.call(1, ep, regs));
  }
}
BENCHMARK(BM_GlobalPoolCallThreaded)->Threads(1)->Threads(2)->Threads(4);

void BM_RtNestedCall(benchmark::State& state) {
  rt::Runtime rt_(1);
  const rt::SlotId slot = rt_.register_thread();
  const EntryPointId inner = rt_.bind(
      {.name = "inner"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
        ppc::set_rc(regs, Status::kOk);
      });
  const EntryPointId outer = rt_.bind(
      {.name = "outer"}, 701, [inner](rt::RtCtx& ctx, ppc::RegSet& regs) {
        ppc::RegSet nested;
        ppc::set_op(nested, 1);
        ppc::set_rc(regs, ctx.call(inner, nested));
      });
  ppc::RegSet regs;
  for (auto _ : state) {
    ppc::set_op(regs, 1);
    benchmark::DoNotOptimize(rt_.call(slot, 1, outer, regs));
  }
}
BENCHMARK(BM_RtNestedCall);

}  // namespace

BENCHMARK_MAIN();
