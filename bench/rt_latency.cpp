// Host-library latency: the PPC pattern's fast path against a global
// locked pool and a message-queue server on this machine, measured with a
// manual steady-clock harness so every distribution lands in
// BENCH_rt_latency.json (mean/p50/p95/p99/p999 per variant).
//
// NOTE: this container exposes a single CPU, so these are per-call latency
// numbers, not scalability curves — the simulator benches cover scaling.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/bench_metrics.h"
#include "rt/global_pool.h"
#include "rt/msgq.h"
#include "rt/runtime.h"

using namespace hppc;

namespace {

constexpr int kWarmupIters = 2'000;
constexpr int kMeasuredBatches = 2'000;
constexpr int kBatch = 16;  // calls per timed batch (amortizes clock reads)

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Time `op` in batches of kBatch and record per-call nanoseconds.
void measure(Percentiles& out, const std::function<void()>& op) {
  for (int i = 0; i < kWarmupIters; ++i) op();
  for (int b = 0; b < kMeasuredBatches; ++b) {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) op();
    out.add((now_ns() - t0) / kBatch);
  }
}

struct NamedDist {
  std::string name;
  Percentiles dist;  // stable storage: BenchReport keeps a pointer
};

}  // namespace

int main() {
  // Keep every recorder alive until the report is written.
  std::vector<NamedDist> dists;
  dists.reserve(16);
  auto bench = [&](const std::string& name, const std::function<void()>& op) {
    dists.push_back(NamedDist{name, {}});
    Percentiles& d = dists.back().dist;
    measure(d, op);
    std::printf("%-24s mean %8.1f ns  p50 %8.1f  p99 %8.1f  p999 %8.1f\n",
                name.c_str(), d.mean(), d.median(), d.p99(), d.p999());
  };

  std::printf("rt host-library per-call latency (ns)\n");
  std::printf("=====================================\n");

  {
    rt::Runtime rt_(1);
    const rt::SlotId slot = rt_.register_thread();
    const EntryPointId ep = rt_.bind(
        {.name = "null"}, 700,
        [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
    ppc::RegSet regs;
    bench("rt_ppc_call", [&] {
      ppc::set_op(regs, 1);
      rt_.call(slot, 1, ep, regs);
    });
  }

  {
    rt::Runtime rt_(1);
    const rt::SlotId slot = rt_.register_thread();
    rt::RtServiceConfig cfg;
    cfg.hold_cd = true;
    const EntryPointId ep = rt_.bind(cfg, 700, [](rt::RtCtx&,
                                                  ppc::RegSet& regs) {
      ppc::set_rc(regs, Status::kOk);
    });
    ppc::RegSet regs;
    bench("rt_ppc_call_hold_cd", [&] {
      ppc::set_op(regs, 1);
      rt_.call(slot, 1, ep, regs);
    });
  }

  {
    rt::Runtime rt_(1);
    const rt::SlotId slot = rt_.register_thread();
    const EntryPointId ep = rt_.bind(
        {.name = "stack"}, 700, [](rt::RtCtx& ctx, ppc::RegSet& regs) {
          auto stack = ctx.stack();
          for (int i = 0; i < 256; i += 64) stack[i] = std::byte{1};
          ppc::set_rc(regs, Status::kOk);
        });
    ppc::RegSet regs;
    bench("rt_ppc_call_stack_use", [&] {
      ppc::set_op(regs, 1);
      rt_.call(slot, 1, ep, regs);
    });
  }

  {
    rt::Runtime rt_(1);
    const rt::SlotId slot = rt_.register_thread();
    const EntryPointId ep = rt_.bind(
        {.name = "null"}, 700,
        [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
    ppc::RegSet regs;
    bench("rt_async_call_plus_poll", [&] {
      ppc::set_op(regs, 1);
      rt_.call_async(slot, 1, ep, regs);
      rt_.poll(slot);
    });
  }

  {
    rt::GlobalPoolRuntime rt_;
    const EntryPointId ep = rt_.bind([](ProgramId, ppc::RegSet& regs) {
      ppc::set_rc(regs, Status::kOk);
    });
    ppc::RegSet regs;
    bench("global_pool_call", [&] {
      ppc::set_op(regs, 1);
      rt_.call(1, ep, regs);
    });
  }

  {
    rt::MsgQueueServer server(1, [](ppc::RegSet& regs) {
      ppc::set_rc(regs, Status::kOk);
    });
    ppc::RegSet regs;
    bench("msg_queue_call", [&] {
      ppc::set_op(regs, 1);
      server.call(regs);
    });
  }

  {
    rt::Runtime rt_(1);
    const rt::SlotId slot = rt_.register_thread();
    const EntryPointId inner = rt_.bind(
        {.name = "inner"}, 700,
        [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
    const EntryPointId outer = rt_.bind(
        {.name = "outer"}, 701, [inner](rt::RtCtx& ctx, ppc::RegSet& regs) {
          ppc::RegSet nested;
          ppc::set_op(nested, 1);
          ppc::set_rc(regs, ctx.call(inner, nested));
        });
    ppc::RegSet regs;
    bench("rt_nested_call", [&] {
      ppc::set_op(regs, 1);
      rt_.call(slot, 1, outer, regs);
    });
  }

  // Counter evidence for the headline claim, from a fresh runtime: after
  // warmup the fast path takes no locks and touches no shared lines.
  rt::Runtime audit(1);
  const rt::SlotId slot = audit.register_thread();
  const EntryPointId ep = audit.bind(
      {.name = "audit"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
  ppc::RegSet regs;
  ppc::set_op(regs, 1);
  audit.call(slot, 1, ep, regs);  // warmup: creates worker + CD
  const obs::CounterSnapshot warm = audit.snapshot();
  for (int i = 0; i < 1000; ++i) {
    ppc::set_op(regs, 1);
    audit.call(slot, 1, ep, regs);
  }
  const obs::CounterSnapshot delta = audit.snapshot().delta(warm);
  std::printf("\nwarm-path audit over 1000 calls: locks_taken=%llu "
              "shared_lines_touched=%llu slow_path_entries=%llu\n",
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kLocksTaken)),
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kSharedLinesTouched)),
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kSlowPathEntries)));

  obs::BenchReport report("rt_latency");
  report.meta("unit", "ns_per_call");
  report.meta("batch", static_cast<double>(kBatch));
  report.meta("batches", static_cast<double>(kMeasuredBatches));
  for (const NamedDist& d : dists) report.series(d.name, d.dist);
  report.counters("rt_warm_1000_calls", delta);
  if (!report.write()) return 1;
  return 0;
}
