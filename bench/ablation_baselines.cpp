// Ablation: what the locks cost. Null-call throughput of the PPC facility
// against an LRPC-style global-pool facility and a message-queue IPC, as
// independent clients are added (one per processor).
//
// The paper's claim (§1, §2): "direct translation of the uniprocessor IPC
// facilities to multiprocessors generally results in accesses to shared
// data and locks along the critical path ... locks can quickly saturate,
// even if the critical sections are very short."
#include <cstdio>
#include <vector>

#include "baseline/lrpc.h"
#include "baseline/msgq.h"
#include "kernel/machine.h"
#include "ppc/facility.h"

using namespace hppc;

namespace {

constexpr double kWindowMs = 4.0;

// Closed-loop null calls from P clients, one per CPU; returns calls/sec.
template <typename CallFn>
double drive(kernel::Machine& machine, std::uint32_t clients, CallFn&& fn) {
  std::vector<kernel::Process*> procs;
  for (CpuId c = 0; c < clients; ++c) {
    auto& as = machine.create_address_space(100 + c,
                                            machine.config().node_of_cpu(c));
    procs.push_back(&machine.create_process(
        100 + c, &as, "client", machine.config().node_of_cpu(c)));
  }
  // Warm.
  for (CpuId c = 0; c < clients; ++c) fn(machine.cpu(c), *procs[c]);

  const Cycles window = machine.config().cycles_from_us(kWindowMs * 1000.0);
  std::vector<std::uint64_t> counts(clients, 0);
  std::vector<Cycles> deadline(clients);
  for (CpuId c = 0; c < clients; ++c) {
    kernel::Cpu& cpu = machine.cpu(c);
    deadline[c] = cpu.now() + window;
    procs[c]->set_body([&, c](kernel::Cpu& cpu2, kernel::Process& self) {
      if (cpu2.now() >= deadline[c]) return;
      fn(cpu2, self);
      ++counts[c];
      machine.ready(cpu2, self);
    });
    machine.ready(cpu, *procs[c]);
  }
  machine.run_until_idle();
  std::uint64_t total = 0;
  for (auto n : counts) total += n;
  return static_cast<double>(total) / (kWindowMs / 1000.0);
}

double ppc_throughput(std::uint32_t clients) {
  kernel::Machine machine(sim::hector_config(16));
  ppc::PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind({.name = "null"}, &as, 700,
                                   [](ppc::ServerCtx&, ppc::RegSet& regs) {
                                     set_rc(regs, Status::kOk);
                                   });
  return drive(machine, clients,
               [&](kernel::Cpu& cpu, kernel::Process& self) {
                 ppc::RegSet regs;
                 set_op(regs, 1);
                 ppc.call(cpu, self, ep, regs);
               });
}

double lrpc_throughput(std::uint32_t clients) {
  kernel::Machine machine(sim::hector_config(16));
  baseline::LrpcFacility lrpc(machine);
  const auto id = lrpc.bind([](baseline::LrpcCtx&, ppc::RegSet& regs) {
    set_rc(regs, Status::kOk);
  });
  return drive(machine, clients,
               [&](kernel::Cpu& cpu, kernel::Process& self) {
                 ppc::RegSet regs;
                 set_op(regs, 1);
                 lrpc.call(cpu, self, id, regs);
               });
}

double msgq_throughput(std::uint32_t clients) {
  kernel::Machine machine(sim::hector_config(16));
  baseline::MsgQueueIpc::Config cfg;
  // Give the server a quarter of the machine, like a typical static split.
  cfg.server_cpus = {12, 13, 14, 15};
  baseline::MsgQueueIpc ipc(machine, cfg);
  return drive(machine, clients,
               [&](kernel::Cpu& cpu, kernel::Process&) {
                 ppc::RegSet regs;
                 set_op(regs, 1);
                 ipc.call(cpu, regs, [](ppc::RegSet& r) {
                   set_rc(r, Status::kOk);
                 });
               });
}

}  // namespace

int main() {
  std::printf("Ablation: IPC throughput vs concurrency (null calls/second)\n");
  std::printf("============================================================\n");
  std::printf("%5s %14s %14s %14s %12s\n", "cpus", "PPC", "LRPC-style",
              "msg-queue", "PPC/LRPC");
  double ppc1 = 0;
  for (std::uint32_t p : {1u, 2u, 4u, 8u, 12u, 16u}) {
    const double ppc_t = ppc_throughput(p);
    const double lrpc_t = lrpc_throughput(p);
    const double msgq_t = msgq_throughput(std::min(p, 12u));
    if (p == 1) ppc1 = ppc_t;
    std::printf("%5u %14.0f %14.0f %14.0f %11.1fx\n", p, ppc_t, lrpc_t,
                msgq_t, ppc_t / lrpc_t);
  }
  std::printf("\nPPC at 16 cpus vs perfect: %.1f%% (should be ~100%%)\n",
              100.0 * ppc_throughput(16) / (16 * ppc1));
  std::printf("Expected shape: PPC scales linearly; the LRPC-style global\n"
              "pool saturates on its lock; the message queue caps at its\n"
              "dedicated server processors.\n");
  return 0;
}
