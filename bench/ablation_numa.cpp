// Ablation: NUMA distance (§3).
//
// "Hector is a NUMA multiprocessor, with memory access costs increasing
//  with the distance between processors and memory. However, because of the
//  emphasis on locality in the design of the PPC facility, we found that
//  the non-uniform memory access times had no measurable impact on
//  performance."
//
// Two experiments: (a) a client calling from increasing ring distance to
// the server's home station, warm caches — the PPC time must be flat;
// (b) the same with the NUMA hop cost swept upward — still flat, because
// the warm path touches no remote memory at all. The LRPC baseline is shown
// for contrast: its shared pools make distance visible immediately.
#include <cstdio>

#include "baseline/lrpc.h"
#include "kernel/machine.h"
#include "ppc/facility.h"

using namespace hppc;

namespace {

double ppc_us_per_call(CpuId client_cpu, Cycles hop_cycles) {
  sim::MachineConfig mc = sim::hector_config(16);
  mc.numa_hop_cycles = hop_cycles;
  kernel::Machine machine(mc);
  ppc::PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, /*home=*/0);  // server: node 0
  const EntryPointId ep = ppc.bind(
      {.name = "null"}, &as, 700,
      [](ppc::ServerCtx&, ppc::RegSet& regs) { set_rc(regs, Status::kOk); });
  auto& cas = machine.create_address_space(
      100, machine.config().node_of_cpu(client_cpu));
  kernel::Process& client = machine.create_process(
      100, &cas, "client", machine.config().node_of_cpu(client_cpu));
  kernel::Cpu& cpu = machine.cpu(client_cpu);
  ppc::RegSet regs;
  for (int i = 0; i < 8; ++i) {
    set_op(regs, 1);
    ppc.call(cpu, client, ep, regs);
  }
  const Cycles t0 = cpu.now();
  for (int i = 0; i < 32; ++i) {
    set_op(regs, 1);
    ppc.call(cpu, client, ep, regs);
  }
  return machine.config().us(cpu.now() - t0) / 32.0;
}

double lrpc_us_per_call(CpuId client_cpu, Cycles hop_cycles) {
  sim::MachineConfig mc = sim::hector_config(16);
  mc.numa_hop_cycles = hop_cycles;
  kernel::Machine machine(mc);
  baseline::LrpcFacility lrpc(machine);  // pools homed on node 0
  const auto id = lrpc.bind([](baseline::LrpcCtx&, ppc::RegSet& regs) {
    set_rc(regs, Status::kOk);
  });
  auto& cas = machine.create_address_space(
      100, machine.config().node_of_cpu(client_cpu));
  kernel::Process& client = machine.create_process(
      100, &cas, "client", machine.config().node_of_cpu(client_cpu));
  kernel::Cpu& cpu = machine.cpu(client_cpu);
  ppc::RegSet regs;
  for (int i = 0; i < 8; ++i) {
    set_op(regs, 1);
    lrpc.call(cpu, client, id, regs);
  }
  const Cycles t0 = cpu.now();
  for (int i = 0; i < 32; ++i) {
    set_op(regs, 1);
    lrpc.call(cpu, client, id, regs);
  }
  return machine.config().us(cpu.now() - t0) / 32.0;
}

}  // namespace

int main() {
  std::printf("Ablation: NUMA distance and the PPC warm path\n");
  std::printf("==============================================\n\n");

  std::printf("(a) client distance from the server's home station "
              "(hop cost 12 cycles)\n");
  std::printf("%10s %6s %14s %14s\n", "client cpu", "hops", "PPC us/call",
              "LRPC us/call");
  for (CpuId c : {0u, 4u, 8u}) {
    std::printf("%10u %6u %14.2f %14.2f\n", c,
                sim::hector_config(16).hops(0, c / 4), ppc_us_per_call(c, 12),
                lrpc_us_per_call(c, 12));
  }

  std::printf("\n(b) hop-cost sweep, client on the most distant station\n");
  std::printf("%12s %14s %14s\n", "hop cycles", "PPC us/call",
              "LRPC us/call");
  for (Cycles hop : {0u, 12u, 48u, 120u}) {
    std::printf("%12llu %14.2f %14.2f\n",
                static_cast<unsigned long long>(hop),
                ppc_us_per_call(8, hop), lrpc_us_per_call(8, hop));
  }
  std::printf("\nExpected: the PPC column is flat in both sweeps (\"the\n"
              "non-uniform memory access times had no measurable impact\",\n"
              "§3); the LRPC column grows with distance and hop cost.\n");
  return 0;
}
