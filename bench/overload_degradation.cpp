// Overload degradation: what happens to cross-slot call throughput when
// offered load exceeds the served slot's capacity. The legacy kBlock
// policy turns every excess caller into a spinner parked on the ring; the
// admission-controlled configuration (shed watermark + fail-fast retry)
// refuses work at the door instead, so the server keeps draining at close
// to its peak rate while the excess is rejected in O(1).
//
// Protocol: first a closed-loop probe measures peak capacity C against a
// busy-polling owner (the queued regime — serve() would let callers
// direct-execute and there would be no queue to overload). Then an open
// paced loop offers m*C for m in {0.5, 1, 2, 4} with shedding enabled and
// records completed/shed/expired rates per multiple.
//
// Acceptance (checked in CI from BENCH_overload_degradation.json):
// completed throughput at 2x offered load stays >= 70% of peak, calls
// were actually shed (calls_shed > 0), and the bench terminates — under
// overload no caller ever hangs, because every admission failure resolves
// to kOverloaded and every queued call carries a deadline.
//
// Single-CPU note: "offered" load above capacity is really "attempted" —
// the pacer can only generate calls as fast as its timeslices allow. That
// still saturates the ring (attempts outpace the drain by construction),
// which is the regime under test.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "obs/bench_metrics.h"
#include "rt/runtime.h"

using namespace hppc;

namespace {

// Synchronous callers form a closed loop: at most kCallers cells can be
// outstanding at once, so the watermark must sit below that for admission
// control to ever engage. 8 callers against a watermark of 6 gives the
// queue room to breathe at low load and something to shed at high load.
constexpr int kCallers = 8;
constexpr std::uint32_t kShedWatermark = 6;  // of the 64-cell ring
constexpr double kPhaseSeconds = 0.25;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

EntryPointId bind_null(rt::Runtime& rt) {
  return rt.bind({.name = "null"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
    ppc::set_rc(regs, Status::kOk);
  });
}

struct PhaseTally {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;      // kOverloaded (watermark or fail-fast)
  std::uint64_t expired = 0;   // kDeadlineExceeded
  std::uint64_t attempted = 0;
};

/// Run `n_callers` paced callers against the busy-polled slot 0 for
/// `kPhaseSeconds`. `interval_ns` == 0 means closed loop (no pacing).
/// Completed-call latencies land in `lat` (merged at thread exit) — the
/// bounded-tail evidence: shedding keeps the p99.9 of the calls that ARE
/// admitted from growing with offered load.
PhaseTally run_phase(rt::Runtime& rt, EntryPointId ep, double interval_ns,
                     const rt::CallOptions& opts, Percentiles* lat,
                     int n_callers = kCallers) {
  std::atomic<std::uint64_t> ok{0}, shed{0}, expired{0}, attempted{0};
  std::mutex lat_mu;
  std::vector<std::thread> threads;
  for (int c = 0; c < n_callers; ++c) {
    threads.emplace_back([&, c] {
      const rt::SlotId my = rt.register_thread();
      const double t_end = now_ns() + kPhaseSeconds * 1e9;
      // Per-caller pacing: each caller offers 1/n_callers of the target
      // rate. Debt does not accumulate — a caller that falls behind
      // resumes from "now" rather than bursting, so the offered rate is
      // capped at the target instead of oscillating around it.
      double next = now_ns() + interval_ns * c / n_callers;  // desynchronize
      std::uint64_t n_ok = 0, n_shed = 0, n_expired = 0, n_att = 0;
      std::vector<double> my_lat;
      ppc::RegSet regs;
      while (true) {
        const double now = now_ns();
        if (now >= t_end) break;
        if (interval_ns > 0) {
          if (now < next) {
            std::this_thread::yield();
            continue;
          }
          next = (now - next > 4 * interval_ns) ? now : next + interval_ns;
        }
        ppc::set_op(regs, 1);
        ++n_att;
        const double t0 = now_ns();
        switch (rt.call_remote(my, 0, my, ep, regs, opts)) {
          case Status::kOk:
            ++n_ok;
            if (lat != nullptr) my_lat.push_back(now_ns() - t0);
            break;
          case Status::kOverloaded: ++n_shed; break;
          case Status::kDeadlineExceeded: ++n_expired; break;
          default: break;
        }
      }
      ok.fetch_add(n_ok);
      shed.fetch_add(n_shed);
      expired.fetch_add(n_expired);
      attempted.fetch_add(n_att);
      if (lat != nullptr) {
        const std::lock_guard<std::mutex> lock(lat_mu);
        for (double v : my_lat) lat->add(v);
      }
    });
  }
  for (auto& t : threads) t.join();
  return PhaseTally{ok.load(), shed.load(), expired.load(), attempted.load()};
}

}  // namespace

int main() {
  // Slot registration is per-thread and monotonic, and every phase spawns
  // fresh caller threads: one owner + kCallers slots for each of the five
  // classless phases (probe + four offered-load multiples), plus one
  // generator slot for each of the two traffic-class probe phases.
  rt::Runtime rt(1 + kCallers * 5 + 2);
  static_assert(kShedWatermark < kCallers,
                "sync callers cap queue depth at kCallers; a higher "
                "watermark would never shed");
  const EntryPointId ep = bind_null(rt);

  std::atomic<bool> stop{false};
  std::atomic<bool> up{false};
  std::thread owner([&] {
    const rt::SlotId s = rt.register_thread();
    up.store(true, std::memory_order_release);
    // Busy-poll so the gate stays held: every call must queue, which is
    // the only regime where "overload" exists for this layer.
    while (!stop.load(std::memory_order_acquire)) {
      if (rt.poll(s) == 0) std::this_thread::yield();
    }
    rt.poll(s);
    rt.enter_idle(s);
  });
  while (!up.load(std::memory_order_acquire)) std::this_thread::yield();

  // Phase 0 — capacity probe: closed loop, legacy blocking policy, no
  // shedding. Completed rate == the slot's drain capacity here.
  rt::CallOptions block_opts;  // defaults: kBlock, no deadline
  const PhaseTally probe = run_phase(rt, ep, 0.0, block_opts, nullptr);
  const double peak = probe.ok / kPhaseSeconds;
  std::printf("capacity probe: %10.0f calls/s (closed loop, %d callers)\n",
              peak, kCallers);

  // Overload phases: admission control on, bounded retries, deadlines.
  rt.set_shed_watermark(kShedWatermark);
  rt::CallOptions opts;
  opts.deadline_cycles = 100'000'000;  // ~tens of ms: bounds the worst case
  opts.retry = rt::RetryPolicy::kFailFast;

  const obs::CounterSnapshot before = rt.snapshot();
  struct RowOut {
    double multiple, offered, completed, shed, expired;
    std::string label;
    Percentiles lat;  // stable storage: BenchReport keeps a pointer
  };
  std::vector<RowOut> rows;
  rows.reserve(4);
  double completed_at_2x = 0, shed_at_2x = 0;
  for (const double m : {0.5, 1.0, 2.0, 4.0}) {
    const double offered = m * peak;
    const double interval_ns = 1e9 * kCallers / offered;  // per caller
    rows.push_back(RowOut{});
    RowOut& r = rows.back();
    const PhaseTally t = run_phase(rt, ep, interval_ns, opts, &r.lat);
    r.multiple = m;
    r.offered = t.attempted / kPhaseSeconds;
    r.completed = t.ok / kPhaseSeconds;
    r.shed = t.shed / kPhaseSeconds;
    r.expired = t.expired / kPhaseSeconds;
    char label[32];
    std::snprintf(label, sizeof label, "latency_ns_%gx", m);
    r.label = label;
    if (m == 2.0) {
      completed_at_2x = r.completed;
      shed_at_2x = r.shed;
    }
    std::printf(
        "offered %4.1fx (%10.0f/s): completed %10.0f/s  shed %9.0f/s  "
        "expired %7.0f/s  p999 %8.0f ns\n",
        m, r.offered, r.completed, r.shed, r.expired,
        r.lat.count() > 0 ? r.lat.p999() : 0.0);
  }
  const obs::CounterSnapshot delta = rt.snapshot().delta(before);

  // ----- traffic classes: interactive latency under bulk overload -----
  //
  // Per-class watermarks: interactive keeps the classless depth, bulk
  // sheds at depth 2. One generator thread paces an interactive probe
  // stream at 1/4 of peak; in the loaded phase it additionally fires a
  // burst of bulk fire-and-forget calls before every probe, lifting the
  // total offered load to ~2x peak through the SAME served slot. Both
  // phases have identical thread topology — on a one-CPU runner that is
  // the only way the latency delta measures the runtime's drain policy
  // rather than the host scheduler — so what the gated ratio isolates is
  // exactly the claim: interactive-first drain ordering plus the shallow
  // bulk watermark keep the interactive p99.9 flat (within 1.5x of the
  // unloaded baseline, gated in CI) while the bulk class absorbs the
  // shedding at the admission door.
  rt.set_shed_watermark(rt::TrafficClass::kInteractive, kShedWatermark);
  rt.set_shed_watermark(rt::TrafficClass::kBulk, 2);
  const double inter_rate = 0.25 * peak;
  const double inter_interval_ns = 1e9 / inter_rate;
  const int kBulkBurst = 7;  // per probe: ~1.75x peak of bulk offered
  rt::CallOptions inter_opts = opts;  // interactive is the default class
  rt::CallOptions bulk_opts = opts;
  bulk_opts.traffic_class = rt::TrafficClass::kBulk;

  // One phase of the paced probe loop: `burst` bulk asyncs ahead of every
  // measured interactive call (0 = unloaded baseline).
  const auto run_probe = [&](int burst, Percentiles* lat, PhaseTally* inter,
                             PhaseTally* bulk) {
    std::thread gen([&, burst] {
      const rt::SlotId my = rt.register_thread();
      const double t_end = now_ns() + kPhaseSeconds * 1e9;
      double next = now_ns();
      ppc::RegSet regs;
      while (true) {
        const double now = now_ns();
        if (now >= t_end) break;
        if (now < next) {
          std::this_thread::yield();
          continue;
        }
        next = (now - next > 4 * inter_interval_ns) ? now
                                                    : next + inter_interval_ns;
        for (int b = 0; b < burst; ++b) {
          ppc::set_op(regs, 1);
          ++bulk->attempted;
          switch (rt.call_remote_async(my, 0, my, ep, regs, bulk_opts)) {
            case Status::kOk: ++bulk->ok; break;
            case Status::kOverloaded: ++bulk->shed; break;
            case Status::kDeadlineExceeded: ++bulk->expired; break;
            default: break;
          }
        }
        ppc::set_op(regs, 1);
        ++inter->attempted;
        const double t0 = now_ns();
        switch (rt.call_remote(my, 0, my, ep, regs, inter_opts)) {
          case Status::kOk:
            ++inter->ok;
            lat->add(now_ns() - t0);
            break;
          case Status::kOverloaded: ++inter->shed; break;
          case Status::kDeadlineExceeded: ++inter->expired; break;
          default: break;
        }
      }
    });
    gen.join();
  };

  Percentiles inter_lat_unloaded;
  PhaseTally inter_unloaded{}, bulk_unloaded{};
  run_probe(0, &inter_lat_unloaded, &inter_unloaded, &bulk_unloaded);

  const obs::CounterSnapshot before_mixed = rt.snapshot();
  Percentiles inter_lat_2x;
  PhaseTally inter_2x{}, bulk_2x{};
  run_probe(kBulkBurst, &inter_lat_2x, &inter_2x, &bulk_2x);
  const obs::CounterSnapshot class_delta = rt.snapshot().delta(before_mixed);

  stop.store(true, std::memory_order_release);
  owner.join();

  const double inter_p999_unloaded =
      inter_lat_unloaded.count() > 0 ? inter_lat_unloaded.p999() : 0;
  const double inter_p999_2x =
      inter_lat_2x.count() > 0 ? inter_lat_2x.p999() : 0;
  const double inter_p999_ratio =
      inter_p999_unloaded > 0 ? inter_p999_2x / inter_p999_unloaded : 0;
  const double bulk_shed_rate = bulk_2x.shed / kPhaseSeconds;
  std::printf(
      "interactive p999 %8.0f ns unloaded -> %8.0f ns under 2x mixed load "
      "(%.2fx); bulk shed %9.0f/s\n",
      inter_p999_unloaded, inter_p999_2x, inter_p999_ratio, bulk_shed_rate);

  const double ratio = peak > 0 ? completed_at_2x / peak : 0;
  std::printf("degradation at 2x offered load: %.0f%% of peak "
              "(shed %10.0f/s)\n", 100 * ratio, shed_at_2x);

  obs::BenchReport report("overload_degradation");
  report.meta("unit", "calls_per_sec");
  report.meta("callers", static_cast<double>(kCallers));
  report.meta("shed_watermark", static_cast<double>(kShedWatermark));
  report.meta("phase_seconds", kPhaseSeconds);
  report.scalar("peak_calls_per_sec", peak);
  report.scalar("completed_at_2x_per_sec", completed_at_2x);
  report.scalar("throughput_retention_at_2x", ratio);
  report.scalar("interactive_p999_unloaded_ns", inter_p999_unloaded);
  report.scalar("interactive_p999_at_2x_ns", inter_p999_2x);
  report.scalar("interactive_p999_ratio_at_2x", inter_p999_ratio);
  report.scalar("bulk_shed_at_2x_per_sec", bulk_shed_rate);
  for (const RowOut& r : rows) {
    report.row("degradation")
        .cell("offered_multiple", r.multiple)
        .cell("offered_per_sec", r.offered)
        .cell("completed_per_sec", r.completed)
        .cell("shed_per_sec", r.shed)
        .cell("deadline_expired_per_sec", r.expired);
    if (r.lat.count() > 0) report.series(r.label, r.lat);
  }
  // Per-class curves: one row per (phase, class); latency series for the
  // interactive stream in both phases (bulk is fire-and-forget, so its
  // story is the admission tallies, not a latency curve).
  const auto class_row = [&](const char* table, const PhaseTally& t) {
    report.row(table)
        .cell("offered_per_sec", t.attempted / kPhaseSeconds)
        .cell("completed_per_sec", t.ok / kPhaseSeconds)
        .cell("shed_per_sec", t.shed / kPhaseSeconds)
        .cell("deadline_expired_per_sec", t.expired / kPhaseSeconds);
  };
  class_row("interactive_unloaded", inter_unloaded);
  class_row("interactive_at_2x", inter_2x);
  class_row("bulk_at_2x", bulk_2x);
  if (inter_lat_unloaded.count() > 0) {
    report.series("latency_ns_interactive_unloaded", inter_lat_unloaded);
  }
  if (inter_lat_2x.count() > 0) {
    report.series("latency_ns_interactive_2x", inter_lat_2x);
  }
  report.counters("overload_phases", delta);
  report.counters("class_phases", class_delta);
  if (!report.write()) return 1;
  return 0;
}
