// Ablation: hold-CD versus serial stack sharing (§2, §3).
//
// "Although, as a side effect, this allows individual calls to complete
//  more quickly in the best case, it removes the advantages of sharing
//  stacks, and may ultimately result in overall lower performance."
//
// We measure (a) the best-case saving of hold-CD on a single hot service,
// and (b) the cache-footprint penalty when a client round-robins across K
// servers: shared stacks keep one stack's lines hot; held CDs keep K.
#include <cstdio>
#include <vector>

#include "kernel/machine.h"
#include "ppc/facility.h"

using namespace hppc;

namespace {

struct Result {
  double us_per_call;
  std::uint64_t dcache_misses;
  std::uint64_t stack_pages;  // physical pages consumed for stacks
};

Result run(bool hold_cd, int num_servers, int rounds) {
  kernel::Machine machine(sim::hector_config(1));
  ppc::PpcFacility ppc(machine);

  std::vector<EntryPointId> eps;
  for (int sIdx = 0; sIdx < num_servers; ++sIdx) {
    auto& as = machine.create_address_space(700 + sIdx, 0);
    ppc::EntryPointConfig cfg;
    cfg.name = "svc" + std::to_string(sIdx);
    cfg.hold_cd = hold_cd;
    eps.push_back(ppc.bind(cfg, &as, 700 + sIdx,
                           [](ppc::ServerCtx& ctx, ppc::RegSet& regs) {
                             // A little real stack usage, so the stack's
                             // cache lines matter.
                             ctx.touch_stack(64, 128, /*is_store=*/true);
                             ctx.touch_stack(64, 128, /*is_store=*/false);
                             set_rc(regs, Status::kOk);
                           }));
  }
  auto& cas = machine.create_address_space(100, 0);
  kernel::Process& client = machine.create_process(100, &cas, "c", 0);
  kernel::Cpu& cpu = machine.cpu(0);

  ppc::RegSet regs;
  for (int warm = 0; warm < 4; ++warm) {
    for (EntryPointId ep : eps) {
      set_op(regs, 1);
      ppc.call(cpu, client, ep, regs);
    }
  }
  const Cycles t0 = cpu.now();
  const auto misses0 = cpu.mem().dcache().misses();
  for (int r = 0; r < rounds; ++r) {
    for (EntryPointId ep : eps) {
      set_op(regs, 1);
      ppc.call(cpu, client, ep, regs);
    }
  }
  const auto calls = static_cast<double>(rounds) * num_servers;
  return {machine.config().us(cpu.now() - t0) / calls,
          cpu.mem().dcache().misses() - misses0,
          machine.frames().fresh_allocations()};
}

}  // namespace

int main() {
  std::printf("Ablation: hold-CD vs serial stack sharing\n");
  std::printf("==========================================\n\n");

  // (a) Best case: one hot service — hold-CD wins (the paper's 2-3 us).
  Result share1 = run(false, 1, 64);
  Result hold1 = run(true, 1, 64);
  std::printf("single hot service:   shared %.1f us/call, hold-CD %.1f "
              "us/call (saving %.1f us)\n",
              share1.us_per_call, hold1.us_per_call,
              share1.us_per_call - hold1.us_per_call);

  // (b) Round-robin across K servers: sharing recycles one stack+CD.
  std::printf("\n%8s %22s %22s %9s %9s\n", "servers",
              "shared us/call(misses)", "hold-CD us/call(misses)",
              "shr pages", "hold pgs");
  for (int k : {2, 4, 8, 16, 32}) {
    Result share = run(false, k, 32);
    Result hold = run(true, k, 32);
    std::printf("%8d %15.1f (%4llu) %15.1f (%4llu) %9llu %9llu%s\n", k,
                share.us_per_call,
                static_cast<unsigned long long>(share.dcache_misses),
                hold.us_per_call,
                static_cast<unsigned long long>(hold.dcache_misses),
                static_cast<unsigned long long>(share.stack_pages),
                static_cast<unsigned long long>(hold.stack_pages),
                hold.us_per_call > share.us_per_call ? "  <- sharing wins"
                                                     : "");
  }
  std::printf(
      "\nExpected: hold-CD is fastest for one service; once many servers\n"
      "are called in succession the shared stack's smaller cache footprint\n"
      "takes over, and it also needs K stack pages instead of one (§2:\n"
      "\"This also reduces the physical memory requirements\").\n");
  return 0;
}
