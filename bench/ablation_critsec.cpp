// Ablation: where does the single-file knee sit as the file server's
// critical section shrinks or grows? Generalizes Figure 3's dashed line:
// the saturation point is ~ total_call_time / serialized_time.
#include <cstdio>

#include "experiments/experiments.h"

using hppc::experiments::Fig3Config;
using hppc::experiments::run_fig3;

int main() {
  std::printf("Ablation: critical-section length vs saturation point\n");
  std::printf("======================================================\n");
  std::printf("(single common file, 16-processor machine)\n\n");
  std::printf("%8s %12s %16s %12s\n", "scale", "1-cpu c/s", "16-cpu c/s",
              "speedup@16");

  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    Fig3Config one;
    one.clients = 1;
    one.single_file = true;
    one.critsec_scale = scale;
    one.measure_ms = 10.0;
    const double base = run_fig3(one).calls_per_sec;

    Fig3Config sixteen = one;
    sixteen.clients = 16;
    const double top = run_fig3(sixteen).calls_per_sec;

    std::printf("%8.2f %12.0f %16.0f %11.2fx%s\n", scale, base, top,
                top / base, scale == 1.0 ? "   <- paper's setup (~4x)" : "");
  }
  std::printf("\nExpected: shrinking the locked section pushes the knee\n"
              "higher; growing it pulls saturation below four processors —\n"
              "\"the dramatic impact any locks in the IPC path might have\"\n"
              "(§3).\n");
  return 0;
}
