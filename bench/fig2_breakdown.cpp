// Figure 2: breakdown of the round-trip PPC time (microseconds) under
// {user->user, user->kernel} x {cache primed, cache flushed} x
// {no CD, hold CD}, plus the §3 scalar claims derived from the same runs.
//
// Paper totals (us): U2U primed 32.4 / 30.0, flushed 52.2 / 48.9;
//                    U2K primed 22.2 / 19.2, flushed 42.0 / 39.6.
#include <cstdio>
#include <string_view>

#include "experiments/experiments.h"
#include "obs/bench_metrics.h"

using hppc::experiments::Fig2Config;
using hppc::experiments::Fig2Result;
using hppc::sim::CostCategory;

namespace {

constexpr CostCategory kRows[] = {
    CostCategory::kTlbSetup,        CostCategory::kServerTime,
    CostCategory::kKernelSaveRestore, CostCategory::kUserSaveRestore,
    CostCategory::kCdManipulation,  CostCategory::kPpcKernel,
    CostCategory::kTlbMiss,         CostCategory::kTrapOverhead,
    CostCategory::kUnaccounted,
};

constexpr double kPaperTotals[] = {32.4, 30.0, 52.2, 48.9,
                                   22.2, 19.2, 42.0, 39.6};

void print_column_header() {
  std::printf("%-22s", "category (us)");
  for (const char* h :
       {"U2U/prim/noCD", "U2U/prim/hold", "U2U/flsh/noCD", "U2U/flsh/hold",
        "U2K/prim/noCD", "U2K/prim/hold", "U2K/flsh/noCD", "U2K/flsh/hold"}) {
    std::printf(" %14s", h);
  }
  std::printf("\n");
}

}  // namespace

namespace {

/// Structured mirror of the text/CSV output, written unconditionally so the
/// breakdown is diffable across PRs.
void write_report(const std::vector<Fig2Result>& results,
                  double dirty_extra_us, double uncontrolled_lo,
                  double uncontrolled_hi) {
  hppc::obs::BenchReport report("fig2_breakdown");
  report.meta("paper", "Figure 2: PPC round-trip breakdown");
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto& row = report.row("breakdown");
    row.cell("paper_total_us", kPaperTotals[i]);
    for (CostCategory cat : kRows) {
      row.cell(to_string(cat), results[i].us(cat));
    }
    row.cell("total_us", results[i].total_us);
    report.meta("config_" + std::to_string(i), results[i].label);
  }
  report.scalar("u2u_primed_us", results[0].total_us);
  report.scalar("u2u_hold_cd_saving_us",
                results[0].total_us - results[1].total_us);
  report.scalar("u2k_primed_us", results[4].total_us);
  report.scalar("u2k_hold_cd_us", results[5].total_us);
  report.scalar("dcache_flush_penalty_us",
                results[2].total_us - results[0].total_us);
  report.scalar("dirty_iflush_extra_us", dirty_extra_us);
  report.scalar("uncontrollable_share_lo_pct", uncontrolled_lo);
  report.scalar("uncontrollable_share_hi_pct", uncontrolled_hi);
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  // --csv: machine-readable output for plotting scripts.
  const bool csv = argc > 1 && std::string_view(argv[1]) == "--csv";
  auto results = hppc::experiments::run_fig2_all(/*measured_calls=*/512);
  if (csv) {
    std::printf("config,category,us\n");
    for (const auto& r : results) {
      for (CostCategory cat : kRows) {
        std::printf("\"%s\",\"%s\",%.3f\n", r.label.c_str(),
                    to_string(cat), r.us(cat));
      }
      std::printf("\"%s\",TOTAL,%.3f\n", r.label.c_str(), r.total_us);
    }
  }
  if (!csv) {
    std::printf("Figure 2: PPC round-trip breakdown (microseconds)\n");
    std::printf("=================================================\n\n");

    print_column_header();
    for (CostCategory cat : kRows) {
      std::printf("%-22s", to_string(cat));
      for (const auto& r : results) std::printf(" %14.2f", r.us(cat));
      std::printf("\n");
    }
    std::printf("%-22s", "TOTAL");
    for (const auto& r : results) std::printf(" %14.2f", r.total_us);
    std::printf("\n%-22s", "paper");
    for (double t : kPaperTotals) std::printf(" %14.2f", t);
    std::printf("\n\n");
  }

  // §3 scalar claims derived from the same data.
  const double u2u = results[0].total_us;
  const double u2u_hold = results[1].total_us;
  const double u2u_flushed = results[2].total_us;
  const double u2k = results[4].total_us;
  const double u2k_hold = results[5].total_us;

  if (!csv) {
    std::printf("Scalar claims (paper -> measured)\n");
    std::printf("  warm user-to-user null PPC:   32.4 -> %.1f us\n", u2u);
    std::printf("  hold-CD saving:              2-3  -> %.1f us\n",
                u2u - u2u_hold);
    std::printf("  user-to-kernel (no CD):       22.2 -> %.1f us\n", u2k);
    std::printf("  user-to-kernel (hold CD):     19.2 -> %.1f us\n", u2k_hold);
    std::printf("  D-cache flush penalty:       ~20   -> %.1f us\n",
                u2u_flushed - u2u);
  }

  // "Dirtying the cache and flushing the instruction cache can increase the
  //  times by another 20-30 usec."
  Fig2Config dirty;
  dirty.flush_dcache = true;
  dirty.dirty_and_flush_icache = true;
  dirty.measured_calls = 256;
  Fig2Result rd = hppc::experiments::run_fig2(dirty);
  if (!csv) {
    std::printf("  dirty+I-flush extra:        20-30  -> %.1f us\n",
                rd.total_us - u2u_flushed);
  }

  // "the categories for which we had no control accounted for between 52%%
  //  and 60%% of the total execution time" (trap, TLB miss, save/restores,
  //  server time).
  double lo = 100.0, hi = 0.0;
  for (const auto& r : results) {
    const double uncontrolled =
        r.us(CostCategory::kTrapOverhead) + r.us(CostCategory::kTlbMiss) +
        r.us(CostCategory::kKernelSaveRestore) +
        r.us(CostCategory::kUserSaveRestore) + r.us(CostCategory::kServerTime);
    const double pct = 100.0 * uncontrolled / r.total_us;
    lo = pct < lo ? pct : lo;
    hi = pct > hi ? pct : hi;
  }
  if (!csv) {
    std::printf("  uncontrollable share:       52-60%% -> %.0f-%.0f%%\n", lo,
                hi);
  }
  write_report(results, rd.total_us - u2u_flushed, lo, hi);
  return 0;
}
