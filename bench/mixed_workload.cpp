// System-level workload: 16 clients, file reads/writes with Zipf-skewed
// popularity plus naming traffic. Shows the paper's architectural point at
// system scale: the IPC layer contributes zero contention; all idle time
// traces to application-level locks on hot files, and it grows exactly as
// popularity concentrates.
#include <cstdio>

#include "experiments/workload.h"

using hppc::experiments::WorkloadConfig;
using hppc::experiments::WorkloadResult;
using hppc::experiments::run_workload;

int main() {
  std::printf("Mixed workload: 16 clients, 64 files, 10%% writes, 2%% name "
              "lookups\n");
  std::printf("==============================================================="
              "=\n\n");

  std::printf("(a) popularity skew sweep\n");
  std::printf("%8s %14s %12s %14s %10s\n", "zipf s", "calls/s", "idle %",
              "lock moves", "lookups");
  for (double s : {0.0, 0.5, 0.9, 1.2, 1.5}) {
    WorkloadConfig cfg;
    cfg.zipf_s = s;
    WorkloadResult r = run_workload(cfg);
    std::printf("%8.1f %14.0f %11.1f%% %14llu %10llu\n", s, r.calls_per_sec,
                100.0 * r.idle_fraction,
                static_cast<unsigned long long>(r.lock_migrations),
                static_cast<unsigned long long>(r.name_lookups));
  }

  std::printf("\n(b) write-fraction sweep (zipf 0.9)\n");
  std::printf("%8s %14s %12s\n", "writes", "calls/s", "idle %");
  for (double w : {0.0, 0.1, 0.3, 0.6}) {
    WorkloadConfig cfg;
    cfg.zipf_s = 0.9;
    cfg.write_fraction = w;
    WorkloadResult r = run_workload(cfg);
    std::printf("%7.0f%% %14.0f %11.1f%%\n", w * 100, r.calls_per_sec,
                100.0 * r.idle_fraction);
  }

  std::printf("\n(c) cycle breakdown at zipf 0.9 (all processors)\n");
  {
    WorkloadConfig cfg;
    cfg.zipf_s = 0.9;
    WorkloadResult r = run_workload(cfg);
    for (std::size_t c = 0; c < hppc::sim::kNumCostCategories; ++c) {
      if (r.category_share[c] < 0.001) continue;
      std::printf("  %-20s %5.1f%%\n",
                  to_string(static_cast<hppc::sim::CostCategory>(c)),
                  100.0 * r.category_share[c]);
    }
  }
  std::printf("\nExpected: throughput falls and idle time rises with skew —\n"
              "the contention is entirely in the file server's per-file\n"
              "locks; the PPC layer itself has no shared data to contend "
              "on.\n");
  return 0;
}
