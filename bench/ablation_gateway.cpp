// Ablation: native PPC service vs a legacy single-threaded receive/reply
// server behind the PPC gateway (§5: "Generally, not much effort is
// required to modify servers to use this facility. Large changes are
// necessary only when adapting a single threaded server to now be
// multithreaded").
//
// The gateway preserves the old server untouched — and its old scalability:
// every request funnels through one process on one processor. Converting
// the server to a native PPC service (its handler body is identical!) buys
// linear scaling.
#include <cstdio>
#include <functional>
#include <vector>

#include "kernel/machine.h"
#include "msg/gateway.h"
#include "ppc/facility.h"

using namespace hppc;

namespace {

constexpr Cycles kServiceWork = 150;  // the server's per-request work

double native_throughput(std::uint32_t clients) {
  kernel::Machine machine(sim::hector_config(16));
  ppc::PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind(
      {.name = "native"}, &as, 700,
      [](ppc::ServerCtx& ctx, ppc::RegSet& regs) {
        ctx.work(kServiceWork);
        regs[0] += 1;
        set_rc(regs, Status::kOk);
      });

  const Cycles window = machine.config().cycles_from_us(4000.0);
  std::vector<std::uint64_t> counts(clients, 0);
  std::vector<Cycles> deadline(clients);
  for (CpuId c = 0; c < clients; ++c) {
    auto& cas = machine.create_address_space(100 + c,
                                             machine.config().node_of_cpu(c));
    kernel::Process& client = machine.create_process(
        100 + c, &cas, "client", machine.config().node_of_cpu(c));
    deadline[c] = machine.cpu(c).now() + window;
    client.set_body([&, c, ep](kernel::Cpu& cpu, kernel::Process& self) {
      if (cpu.now() >= deadline[c]) return;
      ppc::RegSet regs;
      set_op(regs, 1);
      ppc.call(cpu, self, ep, regs);
      ++counts[c];
      machine.ready(cpu, self);
    });
    machine.ready(machine.cpu(c), client);
  }
  machine.run_until_idle();
  std::uint64_t total = 0;
  for (auto n : counts) total += n;
  return static_cast<double>(total) / 0.004;
}

double gateway_throughput(std::uint32_t clients) {
  kernel::Machine machine(sim::hector_config(16));
  ppc::PpcFacility ppc(machine);
  msg::MsgFacility msgs(machine);

  // The untouched legacy server: one process, one CPU (the last one).
  const CpuId server_cpu = 15;
  auto& las = machine.create_address_space(800, machine.config().node_of_cpu(
                                                    server_cpu));
  kernel::Process& legacy = machine.create_process(
      800, &las, "legacy", machine.config().node_of_cpu(server_cpu));
  // The loop re-arms itself; it must outlive this scope's iterations, so
  // declare-then-assign and capture by reference.
  std::function<void(Pid, ppc::RegSet&)> loop;
  loop = [&](Pid from, ppc::RegSet& m) {
    kernel::Cpu& scpu = machine.cpu(server_cpu);
    scpu.mem().charge(sim::CostCategory::kServerTime, kServiceWork);
    ppc::RegSet reply = m;
    reply[0] = m[0] + 1;
    set_rc(reply, Status::kOk);
    msgs.reply(scpu, legacy, from, reply);
    msgs.receive(scpu, legacy, loop);
  };
  legacy.set_body([&](kernel::Cpu& cpu, kernel::Process& self) {
    msgs.receive(cpu, self, loop);
  });
  machine.ready(machine.cpu(server_cpu), legacy);
  machine.run_until_idle();

  msg::PpcMsgGateway gateway(ppc, msgs, legacy.pid());

  const Cycles window = machine.config().cycles_from_us(4000.0);
  std::vector<std::uint64_t> counts(clients, 0);
  std::vector<Cycles> deadline(clients);
  for (CpuId c = 0; c < clients; ++c) {
    auto& cas = machine.create_address_space(100 + c,
                                             machine.config().node_of_cpu(c));
    kernel::Process& client = machine.create_process(
        100 + c, &cas, "client", machine.config().node_of_cpu(c));
    deadline[c] = machine.cpu(c).now() + window;
    client.set_body([&, c](kernel::Cpu& cpu, kernel::Process& self) {
      if (cpu.now() >= deadline[c]) return;
      ppc::RegSet regs;
      set_op(regs, 1);
      // The facility readies this process again when the call completes;
      // the completion only counts.
      ppc.call_blocking(cpu, self, gateway.ep(), regs,
                        [&, c](Status, ppc::RegSet&) { ++counts[c]; });
    });
    machine.ready(machine.cpu(c), client);
  }
  machine.run_until_idle();
  std::uint64_t total = 0;
  for (auto n : counts) total += n;
  return static_cast<double>(total) / 0.004;
}

}  // namespace

int main() {
  std::printf("Ablation: native PPC service vs gatewayed legacy server\n");
  std::printf("========================================================\n");
  std::printf("(identical per-request work; legacy = one receive/reply\n"
              " process on one processor behind the PPC gateway)\n\n");
  std::printf("%5s %16s %16s %10s\n", "cpus", "native PPC c/s",
              "gateway c/s", "ratio");
  for (std::uint32_t p : {1u, 2u, 4u, 8u, 15u}) {
    const double native = native_throughput(p);
    const double gw = gateway_throughput(p);
    std::printf("%5u %16.0f %16.0f %9.1fx\n", p, native, gw, native / gw);
  }
  std::printf("\nExpected: the gateway works and preserves the old server\n"
              "unmodified, but caps at the single process's service rate;\n"
              "the natively adapted server scales with its clients (§5).\n");
  return 0;
}
