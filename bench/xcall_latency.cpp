// Cross-slot call latency: the xcall layer's synchronous round trip in its
// three configurations — direct execution on an idle slot, the adaptive
// serve() mix, and the pure ring path against a busy-polling owner —
// against the two legacy cross-address-space baselines (the mutex+condvar
// message-queue server and the allocating mailbox). Distributions land in
// BENCH_xcall_latency.json; the speedup_vs_msgq_* scalars and the
// xcall_warm_phase counter block are the acceptance evidence: cross-slot
// PPC beats the message queue by the paper's margin and never allocates
// once warm.
//
// NOTE: this container exposes a single CPU, so ring-path round trips pay
// two scheduler context switches (~500 ns each here) — that is the floor
// for any two-thread handoff, msgq included. The direct path exists
// precisely to dodge it.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "obs/bench_metrics.h"
#include "rt/msgq.h"
#include "rt/runtime.h"
#include "rt/xcall.h"

using namespace hppc;

namespace {

constexpr int kWarmupIters = 2'000;
constexpr int kWarmupBatches = 64;  // timed like the real ones, discarded
constexpr int kMeasuredBatches = 2'000;
constexpr int kBatch = 16;  // calls per timed batch (amortizes clock reads)

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Time `op` in batches of kBatch and record per-call nanoseconds.
void measure(Percentiles& out, const std::function<void()>& op) {
  for (int i = 0; i < kWarmupIters; ++i) op();
  // Run the measurement loop itself warm before recording: the first timed
  // batches pay one-off costs (cold clock path, branch history, the
  // scheduler settling after thread setup) that used to land in the
  // recorded max as a several-microsecond outlier over a ~20 ns p50.
  double discard = 0;
  for (int b = 0; b < kWarmupBatches; ++b) {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) op();
    discard += (now_ns() - t0) / kBatch;
  }
  static_cast<void>(discard);
  for (int b = 0; b < kMeasuredBatches; ++b) {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) op();
    out.add((now_ns() - t0) / kBatch);
  }
}

struct NamedDist {
  std::string name;
  Percentiles dist;  // stable storage: BenchReport keeps a pointer
};

EntryPointId bind_null(rt::Runtime& rt) {
  return rt.bind({.name = "null"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
    ppc::set_rc(regs, Status::kOk);
  });
}

}  // namespace

int main() {
  std::vector<NamedDist> dists;
  dists.reserve(8);
  double means[8] = {};
  int n_dists = 0;
  auto bench = [&](const std::string& name, const std::function<void()>& op) {
    dists.push_back(NamedDist{name, {}});
    Percentiles& d = dists.back().dist;
    measure(d, op);
    means[n_dists++] = d.mean();
    std::printf("%-24s mean %8.1f ns  p50 %8.1f  p99 %8.1f  p999 %8.1f\n",
                name.c_str(), d.mean(), d.median(), d.p99(), d.p999());
  };

  std::printf("cross-slot call round-trip latency (ns)\n");
  std::printf("=======================================\n");

  // 1. Direct path: the target slot is never registered, so its gate is
  // idle and every call migrates onto the caller (LRPC-style). This is the
  // adaptive fast case: no context switch, no allocation.
  {
    rt::Runtime rt_(2);
    const rt::SlotId me = rt_.register_thread();
    const EntryPointId ep = bind_null(rt_);
    ppc::RegSet regs;
    bench("xcall_rtt_direct", [&] {
      ppc::set_op(regs, 1);
      rt_.call_remote(me, 1, 1, ep, regs);
    });
  }

  // 2. Adaptive mix: the owner sits in serve(). Whenever it is parked the
  // caller steals and runs directly; in the windows where it holds the
  // gate the call rides the ring. This is the deployment configuration.
  {
    rt::Runtime rt_(2);
    const rt::SlotId me = rt_.register_thread();
    const EntryPointId ep = bind_null(rt_);
    std::atomic<bool> stop{false};
    std::thread server([&] { rt_.serve(rt_.register_thread(), stop); });
    ppc::RegSet regs;
    bench("xcall_rtt_served", [&] {
      ppc::set_op(regs, 1);
      rt_.call_remote(me, 1, 1, ep, regs);
    });
    stop.store(true, std::memory_order_release);
    server.join();
  }

  // 3. Pure ring path: the owner busy-polls and never parks, so the gate
  // is always held and every call posts a cell and waits. On one CPU this
  // pays the two-context-switch floor.
  {
    rt::Runtime rt_(2);
    const rt::SlotId me = rt_.register_thread();
    const EntryPointId ep = bind_null(rt_);
    std::atomic<bool> stop{false};
    std::atomic<bool> up{false};
    std::thread owner([&] {
      const rt::SlotId s = rt_.register_thread();
      up.store(true, std::memory_order_release);
      // Poll-driven owner: yields the CPU when a poll comes up empty (a
      // non-yielding spin would hold the single CPU for its whole quantum)
      // but never parks, so the gate stays held and no call can steal.
      while (!stop.load(std::memory_order_acquire)) {
        if (rt_.poll(s) == 0) std::this_thread::yield();
      }
    });
    while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
    ppc::RegSet regs;
    bench("xcall_rtt_polling", [&] {
      ppc::set_op(regs, 1);
      rt_.call_remote(me, 1, 1, ep, regs);
    });
    stop.store(true, std::memory_order_release);
    owner.join();
  }

  // 4. Legacy baseline: the allocating mailbox plus a hand-rolled
  // completion flag — what every cross-slot call paid before this layer.
  {
    rt::Runtime rt_(2);
    (void)rt_.register_thread();
    std::atomic<bool> stop{false};
    std::atomic<bool> up{false};
    std::thread owner([&] {
      const rt::SlotId s = rt_.register_thread();
      up.store(true, std::memory_order_release);
      while (!stop.load(std::memory_order_acquire)) {
        if (rt_.poll(s) == 0) std::this_thread::yield();
      }
    });
    while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
    bench("mailbox_rtt", [&] {
      std::atomic<std::uint32_t> done{0};
      rt_.post(1, [&done] { done.store(1, std::memory_order_release); });
      int spins = 0;
      while (done.load(std::memory_order_acquire) == 0) {
        if (++spins % 96 == 0) std::this_thread::yield();
        rt::cpu_relax();
      }
    });
    stop.store(true, std::memory_order_release);
    owner.join();
  }

  // 5. Kernel baseline: the mutex+condvar message-queue server (§5's
  // message-passing comparison point).
  {
    rt::MsgQueueServer server(1, [](ppc::RegSet& regs) {
      ppc::set_rc(regs, Status::kOk);
    });
    ppc::RegSet regs;
    bench("msg_queue_call", [&] {
      ppc::set_op(regs, 1);
      server.call(regs);
    });
  }

  const double direct_mean = means[0];
  const double served_mean = means[1];
  const double polling_mean = means[2];
  const double msgq_mean = means[4];

  // Throughput as callers contend for one served slot (single-CPU numbers:
  // a fairness/overhead check, not a scaling curve).
  struct ThroughputRow {
    int callers;
    double calls_per_sec;
  };
  std::vector<ThroughputRow> tput;
  for (const int callers : {1, 2, 4}) {
    rt::Runtime rt_(static_cast<std::uint32_t>(callers) + 1);
    const EntryPointId ep = bind_null(rt_);
    std::atomic<bool> stop{false};
    std::atomic<bool> up{false};
    std::thread server([&] {
      const rt::SlotId s = rt_.register_thread();
      up.store(true, std::memory_order_release);
      rt_.serve(s, stop);
    });
    while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
    constexpr int kCallsEach = 20'000;
    std::vector<std::thread> threads;
    const double t0 = now_ns();
    for (int c = 0; c < callers; ++c) {
      threads.emplace_back([&] {
        const rt::SlotId my = rt_.register_thread();
        ppc::RegSet regs;
        for (int i = 0; i < kCallsEach; ++i) {
          ppc::set_op(regs, 1);
          rt_.call_remote(my, 0, my, ep, regs);
        }
      });
    }
    for (auto& t : threads) t.join();
    const double secs = (now_ns() - t0) * 1e-9;
    stop.store(true, std::memory_order_release);
    server.join();
    const double rate = callers * kCallsEach / secs;
    tput.push_back({callers, rate});
    std::printf("throughput %d caller(s): %10.0f calls/s\n", callers, rate);
  }

  // Counter evidence, single-threaded so the snapshot cannot race: after
  // warmup, 1000 cross-slot calls perform zero heap allocations, zero
  // mailbox traffic, zero ring overflows, zero locks.
  rt::Runtime audit(2);
  const rt::SlotId me = audit.register_thread();
  const EntryPointId ep = bind_null(audit);
  ppc::RegSet regs;
  for (int i = 0; i < 32; ++i) {
    ppc::set_op(regs, 1);
    audit.call_remote(me, 1, 1, ep, regs);  // warmup: worker + CD creation
  }
  const obs::CounterSnapshot warm = audit.snapshot();
  for (int i = 0; i < 1000; ++i) {
    ppc::set_op(regs, 1);
    audit.call_remote(me, 1, 1, ep, regs);
  }
  const obs::CounterSnapshot delta = audit.snapshot().delta(warm);
  std::printf("\nxcall warm-phase audit over 1000 cross-slot calls: "
              "mailbox_allocs=%llu mailbox_posts=%llu xcall_ring_full=%llu "
              "locks_taken=%llu workers_created=%llu\n",
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kMailboxAllocs)),
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kMailboxPosts)),
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kXcallRingFull)),
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kLocksTaken)),
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kWorkersCreated)));
  std::printf("speedup vs msg queue: direct %.1fx, served %.1fx, "
              "ring/polling %.1fx\n",
              msgq_mean / direct_mean, msgq_mean / served_mean,
              msgq_mean / polling_mean);

  obs::BenchReport report("xcall_latency");
  report.meta("unit", "ns_per_call");
  report.meta("batch", static_cast<double>(kBatch));
  report.meta("batches", static_cast<double>(kMeasuredBatches));
  report.meta("warmup_iters", static_cast<double>(kWarmupIters));
  report.meta("warmup_batches", static_cast<double>(kWarmupBatches));
  for (const NamedDist& d : dists) report.series(d.name, d.dist);
  report.scalar("speedup_vs_msgq_direct", msgq_mean / direct_mean);
  report.scalar("speedup_vs_msgq_served", msgq_mean / served_mean);
  report.scalar("speedup_vs_msgq_polling", msgq_mean / polling_mean);
  for (const ThroughputRow& r : tput) {
    report.row("throughput_vs_callers")
        .cell("callers", r.callers)
        .cell("calls_per_sec", r.calls_per_sec);
  }
  report.counters("xcall_warm_phase", delta);
  if (!report.write()) return 1;
  return 0;
}
