// Cross-slot call latency: the xcall layer's synchronous round trip in its
// three configurations — direct execution on an idle slot, the adaptive
// serve() mix, and the pure ring path against a busy-polling owner —
// against the two legacy cross-address-space baselines (the mutex+condvar
// message-queue server and the allocating mailbox). Distributions land in
// BENCH_xcall_latency.json; the speedup_vs_msgq_* scalars and the
// xcall_warm_phase counter block are the acceptance evidence: cross-slot
// PPC beats the message queue by the paper's margin and never allocates
// once warm.
//
// NOTE: this container exposes a single CPU, so ring-path round trips pay
// two scheduler context switches (~500 ns each here) — that is the floor
// for any two-thread handoff, msgq included. The direct path exists
// precisely to dodge it.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "obs/bench_metrics.h"
#include "rt/msgq.h"
#include "rt/runtime.h"
#include "rt/xcall.h"

using namespace hppc;

namespace {

constexpr int kWarmupIters = 2'000;
constexpr int kWarmupBatches = 64;  // timed like the real ones, discarded
constexpr int kMeasuredBatches = 2'000;
constexpr int kBatch = 16;  // calls per timed batch (amortizes clock reads)

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Time `op` in batches of kBatch and record per-call nanoseconds.
/// `calls_per_op` > 1 when one op carries several calls (vectored
/// submission): the recorded series is still per-CALL nanoseconds, so the
/// batched rows compare directly against the single-cell ones.
void measure(Percentiles& out, const std::function<void()>& op,
             int calls_per_op = 1) {
  for (int i = 0; i < kWarmupIters; ++i) op();
  // Run the measurement loop itself warm before recording: the first timed
  // batches pay one-off costs (cold clock path, branch history, the
  // scheduler settling after thread setup) that used to land in the
  // recorded max as a several-microsecond outlier over a ~20 ns p50.
  double discard = 0;
  for (int b = 0; b < kWarmupBatches; ++b) {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) op();
    discard += (now_ns() - t0) / kBatch;
  }
  static_cast<void>(discard);
  for (int b = 0; b < kMeasuredBatches; ++b) {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) op();
    out.add((now_ns() - t0) / (kBatch * calls_per_op));
  }
}

struct NamedDist {
  std::string name;
  Percentiles dist;  // stable storage: BenchReport keeps a pointer
};

EntryPointId bind_null(rt::Runtime& rt) {
  return rt.bind({.name = "null"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
    ppc::set_rc(regs, Status::kOk);
  });
}

/// The frame-ABI null service: a raw function pointer, no worker, no CD —
/// the Figure-4 register contract with nothing in the way.
rt::FrameServiceId bind_null_frame(rt::Runtime& rt) {
  return rt.bind_frame(
      700, [](void*, rt::FrameCtx&, rt::CallFrame&) { return Status::kOk; },
      nullptr);
}

}  // namespace

int main() {
  std::vector<NamedDist> dists;
  dists.reserve(16);
  double means[16] = {};
  int n_dists = 0;
  auto bench_n = [&](const std::string& name, int calls_per_op,
                     const std::function<void()>& op) {
    dists.push_back(NamedDist{name, {}});
    Percentiles& d = dists.back().dist;
    measure(d, op, calls_per_op);
    means[n_dists++] = d.mean();
    std::printf("%-24s mean %8.1f ns  p50 %8.1f  p99 %8.1f  p999 %8.1f\n",
                name.c_str(), d.mean(), d.median(), d.p99(), d.p999());
  };
  auto bench = [&](const std::string& name, const std::function<void()>& op) {
    bench_n(name, 1, op);
  };

  std::printf("cross-slot call round-trip latency (ns)\n");
  std::printf("=======================================\n");

  // 1. Direct path: the target slot is never registered, so its gate is
  // idle and every call migrates onto the caller (LRPC-style). This is the
  // adaptive fast case: no context switch, no allocation.
  {
    rt::Runtime rt_(2);
    const rt::SlotId me = rt_.register_thread();
    const EntryPointId ep = bind_null(rt_);
    ppc::RegSet regs;
    bench("xcall_rtt_direct", [&] {
      ppc::set_op(regs, 1);
      rt_.call_remote(me, 1, 1, ep, regs);
    });
  }

  // 2. Adaptive mix: the owner sits in serve(). Whenever it is parked the
  // caller steals and runs directly; in the windows where it holds the
  // gate the call rides the ring. This is the deployment configuration.
  {
    rt::Runtime rt_(2);
    const rt::SlotId me = rt_.register_thread();
    const EntryPointId ep = bind_null(rt_);
    std::atomic<bool> stop{false};
    std::thread server([&] { rt_.serve(rt_.register_thread(), stop); });
    ppc::RegSet regs;
    bench("xcall_rtt_served", [&] {
      ppc::set_op(regs, 1);
      rt_.call_remote(me, 1, 1, ep, regs);
    });
    stop.store(true, std::memory_order_release);
    server.join();
  }

  // 3. Pure ring path: the owner busy-polls and never parks, so the gate
  // is always held and every call posts a cell and waits. On one CPU this
  // pays the two-context-switch floor.
  {
    rt::Runtime rt_(2);
    const rt::SlotId me = rt_.register_thread();
    const EntryPointId ep = bind_null(rt_);
    std::atomic<bool> stop{false};
    std::atomic<bool> up{false};
    std::thread owner([&] {
      const rt::SlotId s = rt_.register_thread();
      up.store(true, std::memory_order_release);
      // Poll-driven owner: yields the CPU when a poll comes up empty (a
      // non-yielding spin would hold the single CPU for its whole quantum)
      // but never parks, so the gate stays held and no call can steal.
      while (!stop.load(std::memory_order_acquire)) {
        if (rt_.poll(s) == 0) std::this_thread::yield();
      }
    });
    while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
    ppc::RegSet regs;
    bench("xcall_rtt_polling", [&] {
      ppc::set_op(regs, 1);
      rt_.call_remote(me, 1, 1, ep, regs);
    });
    stop.store(true, std::memory_order_release);
    owner.join();
  }

  // 4. Legacy baseline: the allocating mailbox plus a hand-rolled
  // completion flag — what every cross-slot call paid before this layer.
  {
    rt::Runtime rt_(2);
    (void)rt_.register_thread();
    std::atomic<bool> stop{false};
    std::atomic<bool> up{false};
    std::thread owner([&] {
      const rt::SlotId s = rt_.register_thread();
      up.store(true, std::memory_order_release);
      while (!stop.load(std::memory_order_acquire)) {
        if (rt_.poll(s) == 0) std::this_thread::yield();
      }
    });
    while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
    bench("mailbox_rtt", [&] {
      std::atomic<std::uint32_t> done{0};
      rt_.post(1, [&done] { done.store(1, std::memory_order_release); });
      int spins = 0;
      while (done.load(std::memory_order_acquire) == 0) {
        if (++spins % 96 == 0) std::this_thread::yield();
        rt::cpu_relax();
      }
    });
    stop.store(true, std::memory_order_release);
    owner.join();
  }

  // 5. Kernel baseline: the mutex+condvar message-queue server (§5's
  // message-passing comparison point).
  {
    rt::MsgQueueServer server(1, [](ppc::RegSet& regs) {
      ppc::set_rc(regs, Status::kOk);
    });
    ppc::RegSet regs;
    bench("msg_queue_call", [&] {
      ppc::set_op(regs, 1);
      server.call(regs);
    });
  }

  const double direct_mean = means[0];
  const double served_mean = means[1];
  const double polling_mean = means[2];
  const double msgq_mean = means[4];

  // 6. Batched ring path: one call_remote_batch of B calls against the
  // same busy-polling owner as (3). One claim CAS + one release store +
  // one doorbell carry the whole run, and the owner retires it in one
  // drain pass — so the two-context-switch toll of (3) is paid once per
  // BATCH, not once per call. The series records per-CALL nanoseconds;
  // b=1 reproduces the single-cell post cost through the batched entry
  // point, and the b=16/b=64 rows are the amortization evidence.
  double batched_mean_b1 = 0;
  double batched_mean_b16 = 0;
  double batched_mean_b64 = 0;
  for (const int b : {1, 4, 16, 64}) {
    rt::Runtime rt_(2);
    const rt::SlotId me_ = rt_.register_thread();
    const EntryPointId ep = bind_null(rt_);
    std::atomic<bool> stop{false};
    std::atomic<bool> up{false};
    std::thread owner([&] {
      const rt::SlotId s = rt_.register_thread();
      up.store(true, std::memory_order_release);
      while (!stop.load(std::memory_order_acquire)) {
        if (rt_.poll(s) == 0) std::this_thread::yield();
      }
    });
    while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
    std::vector<ppc::RegSet> batch(static_cast<std::size_t>(b));
    bench_n("batched_rtt_per_call_b" + std::to_string(b), b, [&] {
      for (ppc::RegSet& r : batch) ppc::set_op(r, 1);
      rt_.call_remote_batch(me_, 1, 1, ep,
                            std::span<ppc::RegSet>(batch.data(), batch.size()));
    });
    const double mean = dists.back().dist.mean();
    if (b == 1) batched_mean_b1 = mean;
    if (b == 16) batched_mean_b16 = mean;
    if (b == 64) batched_mean_b64 = mean;
    stop.store(true, std::memory_order_release);
    owner.join();
  }

  // 7. The frame ABI on the same two shapes. frame_rtt_direct repeats (1)
  // through the Figure-4 register contract: the packed op word indexes a
  // flat table of raw function pointers, so the call skips the Service
  // lookup, the worker/CD acquisition, the std::function dispatch, and the
  // per-call histogram of the typed path. The batched rows repeat the
  // b16/b64 ring measurements with the whole request inlined in each 64 B
  // cell. The frame_abi_speedup_* scalars compare frame vs typed within
  // THIS run — same machine, same clock path — which is what the CI gate
  // asserts on.
  double frame_direct_mean = 0;
  {
    rt::Runtime rt_(2);
    const rt::SlotId me_ = rt_.register_thread();
    const rt::FrameServiceId svc = bind_null_frame(rt_);
    rt::CallFrame f = rt::make_frame(svc, 1);
    bench("frame_rtt_direct", [&] { rt_.call_remote_frame(me_, 1, 1, f); });
    frame_direct_mean = dists.back().dist.mean();
  }
  double frame_batched_mean_b16 = 0;
  double frame_batched_mean_b64 = 0;
  for (const int b : {16, 64}) {
    rt::Runtime rt_(2);
    const rt::SlotId me_ = rt_.register_thread();
    const rt::FrameServiceId svc = bind_null_frame(rt_);
    std::atomic<bool> stop{false};
    std::atomic<bool> up{false};
    std::thread owner([&] {
      const rt::SlotId s = rt_.register_thread();
      up.store(true, std::memory_order_release);
      while (!stop.load(std::memory_order_acquire)) {
        if (rt_.poll(s) == 0) std::this_thread::yield();
      }
    });
    while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
    std::vector<rt::CallFrame> batch(static_cast<std::size_t>(b));
    bench_n("frame_batched_rtt_per_call_b" + std::to_string(b), b, [&] {
      for (rt::CallFrame& f : batch) f = rt::make_frame(svc, 1);
      rt_.call_remote_frame_batch(
          me_, 1, 1, std::span<rt::CallFrame>(batch.data(), batch.size()));
    });
    const double mean = dists.back().dist.mean();
    if (b == 16) frame_batched_mean_b16 = mean;
    if (b == 64) frame_batched_mean_b64 = mean;
    stop.store(true, std::memory_order_release);
    owner.join();
  }

  // Throughput as closed-loop callers contend for one busy-polling slot,
  // submitting through the batched path (batch=16 — the KvService
  // multi-get shape). Each caller sleeps kThinkUs between submissions,
  // modelling a client that does its own work between RPC bursts: one
  // caller is latency-bound (rate = batch / (think + rtt)), and stacking
  // callers raises offered load until the server saturates — at 16
  // callers the offered load exceeds the measured per-call CPU ceiling,
  // so the 16-caller row is the runtime's actual capacity under 16-way
  // ring + ready-mask + waiter multiplexing. The think time is the point,
  // not a nuisance: on this single-CPU container a zero-think workload is
  // CPU-bound at ANY caller count (every cycle is already doing cell
  // work), so its scaling curve is flat by construction and measures
  // nothing. A single-call series runs alongside as the unbatched
  // reference; its saturation ceiling is ~12x lower — that gap is the
  // batched submission win at capacity.
  struct ThroughputRow {
    int callers;
    double calls_per_sec;
  };
  std::vector<ThroughputRow> tput;
  std::vector<ThroughputRow> tput_single;
  double tput_rate_1 = 0;
  double tput_rate_16 = 0;
  for (const bool batched : {false, true}) {
    for (const int callers : {1, 2, 4, 8, 16}) {
      rt::Runtime rt_(static_cast<std::uint32_t>(callers) + 1);
      const EntryPointId ep = bind_null(rt_);
      std::atomic<bool> stop{false};
      std::atomic<bool> up{false};
      std::thread server([&] {
        const rt::SlotId s = rt_.register_thread();
        up.store(true, std::memory_order_release);
        while (!stop.load(std::memory_order_acquire)) {
          if (rt_.poll(s) == 0) std::this_thread::yield();
        }
      });
      while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
      constexpr int kTotalCalls = 48'000;
      constexpr int kTputBatch = 16;
      constexpr auto kThink = std::chrono::microseconds(50);
      const int calls_each = kTotalCalls / callers;
      std::vector<std::thread> threads;
      const double t0 = now_ns();
      for (int c = 0; c < callers; ++c) {
        threads.emplace_back([&] {
          const rt::SlotId my = rt_.register_thread();
          if (batched) {
            std::array<ppc::RegSet, kTputBatch> b{};
            for (int i = 0; i < calls_each; i += kTputBatch) {
              std::this_thread::sleep_for(kThink);
              for (ppc::RegSet& r : b) ppc::set_op(r, 1);
              rt_.call_remote_batch(my, 0, my, ep, std::span<ppc::RegSet>(b));
            }
          } else {
            ppc::RegSet regs;
            for (int i = 0; i < calls_each; i += kTputBatch) {
              std::this_thread::sleep_for(kThink);
              for (int k = 0; k < kTputBatch; ++k) {
                ppc::set_op(regs, 1);
                rt_.call_remote(my, 0, my, ep, regs);
              }
            }
          }
        });
      }
      for (auto& t : threads) t.join();
      const double secs = (now_ns() - t0) * 1e-9;
      stop.store(true, std::memory_order_release);
      server.join();
      const double rate = callers * calls_each / secs;
      if (batched) {
        tput.push_back({callers, rate});
        if (callers == 1) tput_rate_1 = rate;
        if (callers == 16) tput_rate_16 = rate;
      } else {
        tput_single.push_back({callers, rate});
      }
      std::printf("throughput[%s] %2d caller(s): %10.0f calls/s\n",
                  batched ? "batch16" : "single", callers, rate);
    }
  }

  // Counter evidence, single-threaded so the snapshot cannot race: after
  // warmup, 1000 cross-slot calls perform zero heap allocations, zero
  // mailbox traffic, zero ring overflows, zero locks.
  rt::Runtime audit(2);
  const rt::SlotId me = audit.register_thread();
  const EntryPointId ep = bind_null(audit);
  ppc::RegSet regs;
  for (int i = 0; i < 32; ++i) {
    ppc::set_op(regs, 1);
    audit.call_remote(me, 1, 1, ep, regs);  // warmup: worker + CD creation
  }
  const obs::CounterSnapshot warm = audit.snapshot();
  for (int i = 0; i < 1000; ++i) {
    ppc::set_op(regs, 1);
    audit.call_remote(me, 1, 1, ep, regs);
  }
  const obs::CounterSnapshot delta = audit.snapshot().delta(warm);
  std::printf("\nxcall warm-phase audit over 1000 cross-slot calls: "
              "mailbox_allocs=%llu mailbox_posts=%llu xcall_ring_full=%llu "
              "locks_taken=%llu workers_created=%llu\n",
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kMailboxAllocs)),
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kMailboxPosts)),
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kXcallRingFull)),
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kLocksTaken)),
              static_cast<unsigned long long>(
                  delta.get(obs::Counter::kWorkersCreated)));
  // Batched warm-phase audit: the same zero-alloc/zero-lock claim for the
  // vectored ring path. The ring path needs a live polling owner, whose
  // slot counters are plain stores — so both snapshots are taken while the
  // owner is PARKED at a phase barrier (its last poll happens-before the
  // idle ack this thread acquires), never while it runs.
  rt::Runtime baudit(2);
  const rt::SlotId bme = baudit.register_thread();
  const EntryPointId bep = bind_null(baudit);
  std::atomic<bool> b_stop{false};
  std::atomic<bool> b_up{false};
  std::atomic<bool> b_quiesce{false};
  std::atomic<bool> b_idle{false};
  std::atomic<bool> b_resumed{false};
  std::thread baudit_owner([&] {
    const rt::SlotId s = baudit.register_thread();
    b_up.store(true, std::memory_order_release);
    while (!b_stop.load(std::memory_order_acquire)) {
      if (b_quiesce.load(std::memory_order_acquire)) {
        while (baudit.poll(s) > 0) {
        }
        baudit.enter_idle(s);
        b_idle.store(true, std::memory_order_release);
        while (b_quiesce.load(std::memory_order_acquire) &&
               !b_stop.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        baudit.exit_idle(s);
        b_resumed.store(true, std::memory_order_release);
        continue;
      }
      if (baudit.poll(s) == 0) std::this_thread::yield();
    }
  });
  while (!b_up.load(std::memory_order_acquire)) std::this_thread::yield();
  std::vector<ppc::RegSet> bregs(kBatch);
  auto run_audit_batch = [&] {
    for (ppc::RegSet& r : bregs) ppc::set_op(r, 1);
    baudit.call_remote_batch(bme, 1, 1, bep,
                             std::span<ppc::RegSet>(bregs.data(), kBatch));
  };
  for (int i = 0; i < 64; ++i) run_audit_batch();  // warmup
  auto barrier_snapshot = [&] {
    b_idle.store(false, std::memory_order_relaxed);
    b_quiesce.store(true, std::memory_order_release);
    while (!b_idle.load(std::memory_order_acquire)) std::this_thread::yield();
    const obs::CounterSnapshot snap = baudit.snapshot();
    b_resumed.store(false, std::memory_order_relaxed);
    b_quiesce.store(false, std::memory_order_release);
    while (!b_resumed.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return snap;
  };
  const obs::CounterSnapshot bwarm = barrier_snapshot();
  constexpr int kAuditBatches = 512;
  for (int i = 0; i < kAuditBatches; ++i) run_audit_batch();
  const obs::CounterSnapshot bafter = barrier_snapshot();
  b_stop.store(true, std::memory_order_release);
  baudit_owner.join();
  const obs::CounterSnapshot bdelta = bafter.delta(bwarm);
  std::printf("batched warm-phase audit over %d batches of %d: "
              "batch_posts=%llu cells=%llu mailbox_allocs=%llu "
              "locks_taken=%llu ring_full=%llu\n",
              kAuditBatches, kBatch,
              static_cast<unsigned long long>(
                  bdelta.get(obs::Counter::kXcallBatchPosts)),
              static_cast<unsigned long long>(
                  bdelta.get(obs::Counter::kXcallCellsPerBatch)),
              static_cast<unsigned long long>(
                  bdelta.get(obs::Counter::kMailboxAllocs)),
              static_cast<unsigned long long>(
                  bdelta.get(obs::Counter::kLocksTaken)),
              static_cast<unsigned long long>(
                  bdelta.get(obs::Counter::kXcallRingFull)));

  // Frame warm-phase audit on the same single-threaded shape as the typed
  // one: 1000 warm frame calls touch no lock, no heap, no mailbox, and no
  // worker machinery — each books exactly one calls_frame. The arena
  // gauges ride along as scalars: every hot structure the calls used
  // (rings, histogram blocks, CD stacks, wait pools) came out of the
  // node-local arena, and placement verification found zero off-node
  // pages (on a hugepage-less container the chunks fall back to 4 K —
  // arena_hugepage_fallbacks records that, and the calls are oblivious).
  rt::Runtime faudit(2);
  const rt::SlotId fme = faudit.register_thread();
  const rt::FrameServiceId fsvc = bind_null_frame(faudit);
  rt::CallFrame ff = rt::make_frame(fsvc, 1);
  for (int i = 0; i < 32; ++i) faudit.call_remote_frame(fme, 1, 1, ff);
  const obs::CounterSnapshot fwarm = faudit.snapshot();
  for (int i = 0; i < 1000; ++i) faudit.call_remote_frame(fme, 1, 1, ff);
  const obs::CounterSnapshot fdelta = faudit.snapshot().delta(fwarm);
  const mem::ArenaStats astats = faudit.arena_stats();
  std::printf("frame warm-phase audit over 1000 cross-slot frame calls: "
              "calls_frame=%llu locks_taken=%llu mailbox_allocs=%llu "
              "workers_created=%llu | arena: reserved=%llu B hugepages=%llu "
              "fallbacks=%llu node_mismatch=%llu\n",
              static_cast<unsigned long long>(
                  fdelta.get(obs::Counter::kCallsFrame)),
              static_cast<unsigned long long>(
                  fdelta.get(obs::Counter::kLocksTaken)),
              static_cast<unsigned long long>(
                  fdelta.get(obs::Counter::kMailboxAllocs)),
              static_cast<unsigned long long>(
                  fdelta.get(obs::Counter::kWorkersCreated)),
              static_cast<unsigned long long>(astats.bytes_reserved),
              static_cast<unsigned long long>(astats.hugepages),
              static_cast<unsigned long long>(astats.hugepage_fallbacks),
              static_cast<unsigned long long>(astats.node_mismatches));

  std::printf("speedup vs msg queue: direct %.1fx, served %.1fx, "
              "ring/polling %.1fx\n",
              msgq_mean / direct_mean, msgq_mean / served_mean,
              msgq_mean / polling_mean);
  std::printf("batched amortization: b16 %.1fx, b64 %.1fx cheaper per call "
              "than b1; 16-caller throughput %.2fx 1-caller\n",
              batched_mean_b1 / batched_mean_b16,
              batched_mean_b1 / batched_mean_b64,
              tput_rate_16 / tput_rate_1);

  obs::BenchReport report("xcall_latency");
  report.meta("unit", "ns_per_call");
  report.meta("batch", static_cast<double>(kBatch));
  report.meta("batches", static_cast<double>(kMeasuredBatches));
  report.meta("warmup_iters", static_cast<double>(kWarmupIters));
  report.meta("warmup_batches", static_cast<double>(kWarmupBatches));
  report.meta("throughput_think_time_us", 50.0);
  report.meta("throughput_burst_calls", 16.0);
  for (const NamedDist& d : dists) report.series(d.name, d.dist);
  report.scalar("speedup_vs_msgq_direct", msgq_mean / direct_mean);
  report.scalar("speedup_vs_msgq_served", msgq_mean / served_mean);
  report.scalar("speedup_vs_msgq_polling", msgq_mean / polling_mean);
  report.scalar("batched_speedup_b16", batched_mean_b1 / batched_mean_b16);
  report.scalar("batched_speedup_b64", batched_mean_b1 / batched_mean_b64);
  report.scalar("throughput_scaling_16v1", tput_rate_16 / tput_rate_1);
  // Frame ABI vs the typed path, same run: the CI gate requires >= 1.
  report.scalar("frame_abi_speedup_direct", direct_mean / frame_direct_mean);
  report.scalar("frame_abi_speedup_b16",
                batched_mean_b16 / frame_batched_mean_b16);
  report.scalar("frame_abi_speedup_b64",
                batched_mean_b64 / frame_batched_mean_b64);
  // Arena gauges at audit end (absolute values, not deltas).
  report.scalar("arena_bytes_reserved",
                static_cast<double>(astats.bytes_reserved));
  report.scalar("arena_hugepages", static_cast<double>(astats.hugepages));
  report.scalar("arena_hugepage_fallbacks",
                static_cast<double>(astats.hugepage_fallbacks));
  report.scalar("arena_node_mismatch",
                static_cast<double>(astats.node_mismatches));
  for (const ThroughputRow& r : tput) {
    report.row("throughput_vs_callers")
        .cell("callers", r.callers)
        .cell("calls_per_sec", r.calls_per_sec);
  }
  for (const ThroughputRow& r : tput_single) {
    report.row("throughput_single_vs_callers")
        .cell("callers", r.callers)
        .cell("calls_per_sec", r.calls_per_sec);
  }
  report.counters("xcall_warm_phase", delta);
  report.counters("xcall_batch_warm_phase", bdelta);
  report.counters("frame_warm_phase", fdelta);
  if (!report.write()) return 1;
  return 0;
}
