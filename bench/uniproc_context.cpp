// §1 context: the uniprocessor IPC times the paper positions itself
// against, alongside our reproduction's numbers. "Our IPC overhead is
// comparable to the best times achieved on uniprocessor systems" (§5).
#include <cstdio>

#include "experiments/experiments.h"

int main() {
  std::printf("Null round-trip IPC, literature values cited by the paper\n");
  std::printf("=========================================================\n");
  std::printf("%-34s %10s %8s\n", "system", "platform", "us");
  std::printf("%-34s %10s %8.0f\n", "L3 (Liedtke)", "20MHz 386", 60.0);
  std::printf("%-34s %10s %8.0f\n", "L3 (Liedtke)", "50MHz 486", 10.0);
  std::printf("%-34s %10s %8.0f\n", "Mach", "25MHz R3000", 57.0);
  std::printf("%-34s %10s %8.0f\n", "Mach", "16MHz R2000", 95.0);
  std::printf("%-34s %10s %8.0f\n", "QNX", "33MHz 486", 76.0);
  std::printf("%-34s %10s %8.1f\n", "PPC paper, user-to-user (warm)",
              "16MHz 88100", 32.4);
  std::printf("%-34s %10s %8.1f\n", "PPC paper, user-to-kernel+holdCD",
              "16MHz 88100", 19.2);

  hppc::experiments::Fig2Config u2u;
  u2u.measured_calls = 256;
  const double repro_u2u = hppc::experiments::run_fig2(u2u).total_us;
  hppc::experiments::Fig2Config u2k;
  u2k.kernel_server = true;
  u2k.hold_cd = true;
  u2k.measured_calls = 256;
  const double repro_u2k = hppc::experiments::run_fig2(u2k).total_us;

  std::printf("%-34s %10s %8.1f\n", "THIS REPRO, user-to-user (warm)",
              "simulated", repro_u2u);
  std::printf("%-34s %10s %8.1f\n", "THIS REPRO, user-to-kernel+holdCD",
              "simulated", repro_u2k);
  std::printf("\nThe multiprocessor facility lands in the same band as the\n"
              "best uniprocessor IPC systems of the day, as claimed.\n");
  return 0;
}
