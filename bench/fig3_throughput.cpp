// Figure 3: throughput of a single file server handling GetLength requests
// from 1..16 independent clients, one per processor.
//
// Paper: "different files" scales linearly (perfect speedup, each processor
// contributing a constant increase); "single common file" saturates at four
// processors because of the lock + a few shared accesses in the file
// server's critical section. Sequential base time: 66 us per call.
//
// A third curve extends the paper's ablation: the same single common file
// with the read-mostly record block replicated per CPU (src/repl/). The
// GetLength path then takes no lock at all, and the shared file scales like
// the independent ones.
//
// Output: the human-readable table (or --csv), plus a structured
// BENCH_fig3_throughput.json via obs::BenchReport.
#include <cstdio>
#include <string_view>
#include <vector>

#include "experiments/experiments.h"
#include "obs/bench_metrics.h"

using hppc::experiments::Fig3Config;
using hppc::experiments::Fig3Result;

namespace {

struct Point {
  std::uint32_t cpus;
  Fig3Result diff;
  Fig3Result single;
  Fig3Result repl;  // single file, replicated read path
};

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string_view(argv[1]) == "--csv";

  // Baseline: one client, to anchor the perfect-speedup line.
  Fig3Config base;
  base.clients = 1;
  Fig3Result r1 = hppc::experiments::run_fig3(base);
  const double per_client = r1.calls_per_sec;

  // Replicated sequential base: the call itself is cheaper without the
  // locked section, so its perfect-speedup line is steeper.
  Fig3Config base_repl = base;
  base_repl.single_file = true;
  base_repl.replicate_read_path = true;
  Fig3Result r1_repl = hppc::experiments::run_fig3(base_repl);

  std::vector<Point> points;
  for (std::uint32_t p = 1; p <= 16; ++p) {
    Fig3Config cfg;
    cfg.clients = p;
    cfg.single_file = false;
    Fig3Result diff = hppc::experiments::run_fig3(cfg);
    cfg.single_file = true;
    Fig3Result single = hppc::experiments::run_fig3(cfg);
    cfg.replicate_read_path = true;
    Fig3Result repl = hppc::experiments::run_fig3(cfg);
    points.push_back(Point{p, diff, single, repl});
  }

  if (csv) {
    std::printf(
        "cpus,perfect,diff_files,single_file,single_file_replicated,"
        "mean_us,p99_us\n");
    for (const Point& pt : points) {
      std::printf("%u,%.0f,%.0f,%.0f,%.0f,%.1f,%.1f\n", pt.cpus,
                  per_client * pt.cpus, pt.diff.calls_per_sec,
                  pt.single.calls_per_sec, pt.repl.calls_per_sec,
                  pt.single.mean_call_us, pt.single.p99_call_us);
    }
  } else {
    std::printf("Figure 3: file-server GetLength throughput (calls/second)\n");
    std::printf("=========================================================\n\n");
    std::printf("sequential GetLength: %.1f us/call (paper: 66 us)\n",
                r1.sequential_us);
    std::printf("replicated sequential GetLength: %.1f us/call "
                "(no locked section)\n\n",
                r1_repl.sequential_us);

    std::printf("%5s %13s %13s %13s %13s %9s %12s %10s\n", "cpus", "perfect",
                "diff-files", "single-file", "1file-repl", "sat.",
                "1file mean", "1file p99");
    for (const Point& pt : points) {
      std::printf(
          "%5u %13.0f %13.0f %13.0f %13.0f %8.2fx %10.0fus %8.0fus\n",
          pt.cpus, per_client * pt.cpus, pt.diff.calls_per_sec,
          pt.single.calls_per_sec, pt.repl.calls_per_sec,
          pt.single.calls_per_sec / per_client, pt.single.mean_call_us,
          pt.single.p99_call_us);
    }

    std::printf(
        "\nExpected shape: diff-files tracks perfect speedup; single-file\n"
        "saturates around 4 processors (paper: \"the throughput saturates "
        "at\nfour processors\"); the replicated single file scales like\n"
        "diff-files — and can exceed the locked perfect line, because each\n"
        "call is also shorter once the locked section is gone.\n");
  }

  hppc::obs::BenchReport report("fig3_throughput");
  report.meta("paper", "Figure 3: file-server GetLength throughput");
  report.meta("paper_sequential_us", 66.0);
  report.scalar("sequential_us", r1.sequential_us);
  report.scalar("replicated_sequential_us", r1_repl.sequential_us);
  report.scalar("per_client_calls_per_sec", per_client);
  for (const Point& pt : points) {
    report.row("throughput")
        .cell("cpus", pt.cpus)
        .cell("perfect", per_client * pt.cpus)
        .cell("diff_files_calls_per_sec", pt.diff.calls_per_sec)
        .cell("single_file_calls_per_sec", pt.single.calls_per_sec)
        .cell("single_file_replicated_calls_per_sec", pt.repl.calls_per_sec)
        .cell("single_file_saturation", pt.single.calls_per_sec / per_client)
        .cell("replicated_speedup_vs_locked",
              pt.repl.calls_per_sec / pt.single.calls_per_sec)
        .cell("single_file_mean_us", pt.single.mean_call_us)
        .cell("single_file_p99_us", pt.single.p99_call_us)
        .cell("single_file_lock_migrations",
              static_cast<double>(pt.single.lock_migrations))
        .cell("replicated_lock_migrations",
              static_cast<double>(pt.repl.lock_migrations));
  }
  // Counter snapshots for the full-machine endpoints: the single-file run
  // accumulates lock traffic, the different-files run stays slot-local, and
  // the replicated run's warm (post-warmup) phase must show zero locks.
  report.counters("diff_files_16cpu", points.back().diff.counters);
  report.counters("single_file_16cpu", points.back().single.counters);
  report.counters("single_file_replicated_16cpu", points.back().repl.counters);
  report.counters("single_file_replicated_16cpu_warm",
                  points.back().repl.warm_counters);
  if (!report.write()) return 1;
  return 0;
}
