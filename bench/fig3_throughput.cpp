// Figure 3: throughput of a single file server handling GetLength requests
// from 1..16 independent clients, one per processor.
//
// Paper: "different files" scales linearly (perfect speedup, each processor
// contributing a constant increase); "single common file" saturates at four
// processors because of the lock + a few shared accesses in the file
// server's critical section. Sequential base time: 66 us per call.
#include <cstdio>
#include <string_view>

#include "experiments/experiments.h"

using hppc::experiments::Fig3Config;
using hppc::experiments::Fig3Result;

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string_view(argv[1]) == "--csv";

  // Baseline: one client, to anchor the perfect-speedup line.
  Fig3Config base;
  base.clients = 1;
  Fig3Result r1 = hppc::experiments::run_fig3(base);
  const double per_client = r1.calls_per_sec;

  if (csv) {
    std::printf("cpus,perfect,diff_files,single_file,mean_us,p99_us\n");
    for (std::uint32_t p = 1; p <= 16; ++p) {
      Fig3Config cfg;
      cfg.clients = p;
      cfg.single_file = false;
      Fig3Result diff = hppc::experiments::run_fig3(cfg);
      cfg.single_file = true;
      Fig3Result single = hppc::experiments::run_fig3(cfg);
      std::printf("%u,%.0f,%.0f,%.0f,%.1f,%.1f\n", p, per_client * p,
                  diff.calls_per_sec, single.calls_per_sec,
                  single.mean_call_us, single.p99_call_us);
    }
    return 0;
  }

  std::printf("Figure 3: file-server GetLength throughput (calls/second)\n");
  std::printf("=========================================================\n\n");
  std::printf("sequential GetLength: %.1f us/call (paper: 66 us)\n\n",
              r1.sequential_us);

  std::printf("%5s %13s %13s %13s %9s %12s %10s\n", "cpus", "perfect",
              "diff-files", "single-file", "sat.", "1file mean", "1file p99");
  for (std::uint32_t p = 1; p <= 16; ++p) {
    Fig3Config cfg;
    cfg.clients = p;

    cfg.single_file = false;
    Fig3Result diff = hppc::experiments::run_fig3(cfg);

    cfg.single_file = true;
    Fig3Result single = hppc::experiments::run_fig3(cfg);

    std::printf("%5u %13.0f %13.0f %13.0f %8.2fx %10.0fus %8.0fus\n", p,
                per_client * p, diff.calls_per_sec, single.calls_per_sec,
                single.calls_per_sec / per_client, single.mean_call_us,
                single.p99_call_us);
  }

  std::printf(
      "\nExpected shape: diff-files tracks perfect speedup; single-file\n"
      "saturates around 4 processors (paper: \"the throughput saturates at\n"
      "four processors\").\n");
  return 0;
}
