// Ablation: Frank's slow paths and pool dynamics (§4.5.6, §2).
//
// "Worker processes are created dynamically as needed"; "extra stacks
// created during peak call activity can easily be reclaimed". This bench
// quantifies: the cost of a Frank-redirected first call vs a warm call, the
// pool growth forced by a burst of blocked (in-flight) calls, and the cost
// of trimming after the burst.
#include <cstdio>
#include <vector>

#include "kernel/machine.h"
#include "ppc/facility.h"

using namespace hppc;

int main() {
  std::printf("Ablation: Frank slow paths and pool dynamics\n");
  std::printf("=============================================\n\n");

  kernel::Machine machine(sim::hector_config(1));
  ppc::PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);

  // A service whose handler blocks until released: lets us hold many calls
  // in flight on one CPU, forcing the worker pool to grow.
  std::vector<ppc::Worker*> blocked;
  const EntryPointId ep = ppc.bind(
      {.name = "blocker"}, &as, 700,
      [&](ppc::ServerCtx& ctx, ppc::RegSet&) {
        blocked.push_back(&ctx.worker());
        ctx.block_call([](ppc::ServerCtx&, ppc::RegSet& r) {
          set_rc(r, Status::kOk);
        });
      });

  auto& cas = machine.create_address_space(100, 0);
  kernel::Cpu& cpu = machine.cpu(0);

  // First call: pays the Frank redirect + worker creation.
  kernel::Process& probe = machine.create_process(100, &cas, "probe", 0);
  bool first = true;
  Cycles first_cost = 0, warm_cost = 0;
  probe.set_body([&](kernel::Cpu& cpu2, kernel::Process& self) {
    if (!first) return;
    first = false;
    ppc::RegSet regs;
    set_op(regs, 1);
    const Cycles t0 = cpu2.now();
    ppc.call_blocking(cpu2, self, ep, regs, [](Status, ppc::RegSet&) {});
    first_cost = cpu2.now() - t0;
  });
  machine.ready(cpu, probe);
  machine.run_until_idle();
  ppc.resume_worker(cpu, *blocked.back());
  blocked.clear();

  // Warm call for comparison.
  kernel::Process& probe2 = machine.create_process(100, &cas, "probe2", 0);
  bool first2 = true;
  probe2.set_body([&](kernel::Cpu& cpu2, kernel::Process& self) {
    if (!first2) return;
    first2 = false;
    ppc::RegSet regs;
    set_op(regs, 1);
    const Cycles t0 = cpu2.now();
    ppc.call_blocking(cpu2, self, ep, regs, [](Status, ppc::RegSet&) {});
    warm_cost = cpu2.now() - t0;
  });
  machine.ready(cpu, probe2);
  machine.run_until_idle();
  ppc.resume_worker(cpu, *blocked.back());
  blocked.clear();

  std::printf("first call (Frank redirect + worker creation): %.1f us\n",
              machine.config().us(first_cost));
  std::printf("warm call (pooled worker):                     %.1f us\n",
              machine.config().us(warm_cost));
  std::printf("slow-path penalty:                             %.1f us\n\n",
              machine.config().us(first_cost - warm_cost));

  // Burst: N concurrent in-flight calls on one CPU -> N workers + N CDs.
  constexpr int kBurst = 12;
  std::vector<kernel::Process*> burst_clients;
  for (int i = 0; i < kBurst; ++i) {
    kernel::Process& c = machine.create_process(200 + i, &cas, "burst", 0);
    burst_clients.push_back(&c);
    bool sent = false;
    c.set_body([&, sent](kernel::Cpu& cpu2, kernel::Process& self) mutable {
      if (sent) return;
      sent = true;
      ppc::RegSet regs;
      set_op(regs, 1);
      ppc.call_blocking(cpu2, self, ep, regs, [](Status, ppc::RegSet&) {});
    });
    machine.ready(cpu, c);
  }
  machine.run_until_idle();
  auto* e = ppc.entry_point(ep);
  std::printf("burst of %d in-flight calls:\n", kBurst);
  std::printf("  workers created on cpu 0: %u\n",
              e->per_cpu(0).workers_created);
  std::printf("  CDs created on cpu 0:     %llu\n",
              static_cast<unsigned long long>(
                  machine.cpu(0).counters().get(obs::Counter::kCdsCreated)));
  std::printf("  Frank worker refills:     %llu\n",
              static_cast<unsigned long long>(machine.cpu(0).counters().get(
                  obs::Counter::kFrankWorkerRefills)));

  // Drain the burst and trim back to the pool target.
  for (ppc::Worker* w : blocked) ppc.resume_worker(cpu, *w);
  machine.run_until_idle();
  std::printf("  pooled workers after drain: %zu\n",
              ppc.pooled_workers(0, ep));
  const Cycles t0 = cpu.now();
  ppc.trim_pools(cpu);
  std::printf("  pooled workers after trim:  %zu (trim cost %.1f us)\n",
              ppc.pooled_workers(0, ep), machine.config().us(cpu.now() - t0));
  std::printf("\nExpected: pools grow exactly to the burst's concurrency and\n"
              "trim back to the per-service target afterwards (§2, §4.5.6).\n");
  return 0;
}
