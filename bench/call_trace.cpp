// Anatomy of one warm PPC call: the ordered sequence of charges a single
// user-to-user round trip makes, grouped into the paper's Figure-2
// categories. This is the model-side equivalent of the paper's low-level
// measurement methodology, and the ground truth behind the stacked bars.
#include <cstdio>
#include <vector>

#include "kernel/machine.h"
#include "ppc/facility.h"

using namespace hppc;

int main() {
  kernel::Machine machine(sim::hector_config(1));
  ppc::PpcFacility ppc(machine);
  auto& as = machine.create_address_space(700, 0);
  const EntryPointId ep = ppc.bind(
      {.name = "null"}, &as, 700,
      [](ppc::ServerCtx&, ppc::RegSet& regs) { set_rc(regs, Status::kOk); });
  auto& cas = machine.create_address_space(100, 0);
  kernel::Process& client = machine.create_process(100, &cas, "c", 0);
  kernel::Cpu& cpu = machine.cpu(0);

  ppc::RegSet regs;
  for (int i = 0; i < 8; ++i) {  // warm everything
    set_op(regs, 1);
    ppc.call(cpu, client, ep, regs);
  }

  struct Step {
    sim::CostCategory cat;
    Cycles cycles;
  };
  std::vector<Step> steps;
  cpu.mem().set_trace([&](sim::CostCategory c, Cycles cy, Cycles) {
    // Coalesce consecutive charges of the same category into one step, the
    // way the eye groups the call path.
    if (!steps.empty() && steps.back().cat == c) {
      steps.back().cycles += cy;
    } else {
      steps.push_back({c, cy});
    }
  });
  set_op(regs, 1);
  ppc.call(cpu, client, ep, regs);
  cpu.mem().clear_trace();

  std::printf("One warm user-to-user null PPC, step by step\n");
  std::printf("============================================\n");
  const double mhz = machine.config().clock_mhz;
  Cycles total = 0;
  for (const auto& s : steps) total += s.cycles;
  Cycles acc = 0;
  for (const auto& s : steps) {
    acc += s.cycles;
    std::printf("  %-20s %4llu cy  %5.2f us   |%s\n", to_string(s.cat),
                static_cast<unsigned long long>(s.cycles),
                static_cast<double>(s.cycles) / mhz,
                std::string(static_cast<std::size_t>(40.0 * acc / total),
                            '#')
                    .c_str());
  }
  std::printf("  %-20s %4llu cy  %5.2f us\n", "TOTAL",
              static_cast<unsigned long long>(total),
              static_cast<double>(total) / mhz);
  std::printf("\n%zu distinct steps; compare the category sums against the\n"
              "bars of bench/fig2_breakdown.\n",
              steps.size());
  return 0;
}
