// Cross-PROCESS PPC latency and bulk bandwidth: the shm transport's warm
// null-call round trip — threaded (same address space, two threads) and
// forked (two processes, the deployment shape) — against the in-process
// ring path it mirrors, plus the CopyServer bulk path (4 K / 64 K / 1 M
// granted-region transfers) against a pipe baseline. The acceptance
// scalars:
//
//   shm_vs_inproc_rtt        cross-process RTT over in-process ring RTT —
//                            the gate requires <= 3x: both pay the same
//                            two-context-switch floor on this single-CPU
//                            container, so the shm protocol itself must
//                            add at most protocol noise;
//   bulk_1m_speedup_vs_pipe  1 MiB granted-region DELIVERY bandwidth over
//                            the same payload through a pipe — gate >= 5x.
//                            Delivery = the receiver holds an addressable
//                            mapping of the whole payload. The grant gets
//                            there with a 16-byte descriptor in one cell;
//                            the pipe can only get there by copying every
//                            byte twice through the kernel's 64 KiB pipe
//                            buffer. In-place-read and CopyServer-staged
//                            consumption rates ride alongside in the
//                            bulk_bandwidth table (the copy path is also
//                            a scalar, bulk_1m_copy_speedup_vs_pipe);
//   bulk_cells_per_call      ring cells drained per bulk call — exactly 1
//                            at every payload size: descriptors ride the
//                            cell, payloads never do (O(1) cell traffic);
//
// and the shm_warm_phase counter block is the zero-alloc/zero-lock
// evidence: 1000 warm calls book 1000 calls_remote, 1000 drained cells,
// and nothing else — no locks_taken, no mailbox_allocs, no pool growth.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "obs/bench_metrics.h"
#include "obs/counters.h"
#include "ppc/regs.h"
#include "rt/bulk_desc.h"
#include "rt/runtime.h"
#include "shm/transport.h"

#ifdef __linux__
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace hppc;

#ifdef __linux__

namespace {

constexpr int kWarmupIters = 2'000;
constexpr int kMeasuredBatches = 1'000;
constexpr int kBatch = 8;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void measure(Percentiles& out, const std::function<void()>& op) {
  for (int i = 0; i < kWarmupIters; ++i) op();
  for (int b = 0; b < kMeasuredBatches; ++b) {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) op();
    out.add((now_ns() - t0) / kBatch);
  }
}

struct NamedDist {
  std::string name;
  Percentiles dist;  // stable storage: BenchReport keeps a pointer
};

std::string uniq_name(const char* tag) {
  return std::string("/hppc_bench_") + tag + "_" + std::to_string(::getpid());
}

Status null_handler(void*, shm::ShmCtx&, ppc::RegSet&) { return Status::kOk; }

// Bulk sink: one BulkSeg descriptor at w[0..3]; pull the payload out of
// the granted region into a server-local stage. The payload crosses as
// one grant-checked memcpy — the cell carries 16 descriptor bytes.
struct BulkSink {
  std::vector<std::byte> stage = std::vector<std::byte>(1u << 20);
  static Status run(void* self, shm::ShmCtx& ctx, ppc::RegSet& regs) {
    auto* s = static_cast<BulkSink*>(self);
    const rt::BulkSeg seg = rt::bulk_seg_unpack(regs, 0);
    return ctx.copy->copy_from(seg.region, seg.addr, s->stage.data(), seg.len);
  }
};

/// Consume a payload without reading it through the pipe's lens: sum the
/// granted bytes IN PLACE (one grant-checked resolve, one read pass, no
/// copy at all — the region is already mapped in the server). This is
/// what the granted-region design buys over any message-passing channel:
/// a pipe cannot deliver a byte without copying it twice; here delivery
/// is the descriptor and the payload never moves. The checksum lands in
/// the reply so the pass cannot be optimized away.
Status bulk_consume_in_place(void*, shm::ShmCtx& ctx, ppc::RegSet& regs) {
  const rt::BulkSeg seg = rt::bulk_seg_unpack(regs, 0);
  const auto* p = static_cast<const std::byte*>(
      ctx.copy->resolve(seg.region, seg.addr, seg.len, /*writable=*/false));
  if (p == nullptr) return Status::kBadRegion;
  // Four accumulators so the pass runs at memory bandwidth, not at the
  // latency of one serial add chain.
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0, w = 0;
  std::size_t i = 0;
  for (; i + 32 <= seg.len; i += 32) {
    std::memcpy(&w, p + i, 8);
    s0 += w;
    std::memcpy(&w, p + i + 8, 8);
    s1 += w;
    std::memcpy(&w, p + i + 16, 8);
    s2 += w;
    std::memcpy(&w, p + i + 24, 8);
    s3 += w;
  }
  std::uint64_t sum = s0 + s1 + s2 + s3;
  for (; i < seg.len; ++i) sum += static_cast<std::uint64_t>(p[i]);
  ppc::set_u64(regs, 0, sum);
  return Status::kOk;
}

/// Delivery only: validate the grant and touch the first byte. After this
/// returns, the server holds an addressable mapping of the whole payload —
/// the same end state the pipe's receiver reaches, except the pipe can
/// only get there by copying every byte twice (user -> kernel buffer ->
/// user). This is the transport cost itself, with no consumer workload
/// mixed in, and it is what `bulk_1m_speedup_vs_pipe` gates.
Status bulk_deliver(void*, shm::ShmCtx& ctx, ppc::RegSet& regs) {
  const rt::BulkSeg seg = rt::bulk_seg_unpack(regs, 0);
  const auto* p = static_cast<const std::byte*>(
      ctx.copy->resolve(seg.region, seg.addr, seg.len, /*writable=*/false));
  if (p == nullptr) return Status::kBadRegion;
  regs[0] = static_cast<std::uint32_t>(p[0]);
  return Status::kOk;
}

/// Fork a server process: create the transport, bind the four endpoints,
/// serve until the segment's stop flag. Returns the child pid.
pid_t spawn_server(const std::string& name) {
  const pid_t child = ::fork();
  if (child != 0) return child;
  {
    shm::Server server(name);
    BulkSink sink;
    server.bind(&null_handler, nullptr);           // ep 1
    server.bind(&BulkSink::run, &sink);            // ep 2: staged copy
    server.bind(&bulk_consume_in_place, nullptr);  // ep 3: in-place read
    server.bind(&bulk_deliver, nullptr);           // ep 4: delivery only
    server.serve(/*dead_after_ns=*/2'000'000'000ull);
  }
  ::_exit(0);
}

/// Block until another process has published the transport segment.
void wait_for_transport(const std::string& name) {
  for (;;) {
    try {
      shm::Segment s = shm::Segment::open(name);
      const auto* hdr = reinterpret_cast<const shm::ShmHeader*>(s.base());
      if (hdr->magic.load(std::memory_order_acquire) == shm::kShmMagic) return;
    } catch (const std::exception&) {
    }
    ::usleep(1000);
  }
}

/// Spin until the null ep (ep 1) answers kOk — covers the window between
/// segment publication and the server's bind.
void warm_null_ep(shm::Peer& peer) {
  ppc::RegSet regs;
  while (peer.call(1, regs) != Status::kOk) ::usleep(1000);
}

}  // namespace

int main() {
  std::vector<NamedDist> dists;
  dists.reserve(8);
  auto bench = [&](const std::string& name, const std::function<void()>& op) {
    dists.push_back(NamedDist{name, {}});
    Percentiles& d = dists.back().dist;
    measure(d, op);
    std::printf("%-24s mean %8.1f ns  p50 %8.1f  p99 %8.1f\n", name.c_str(),
                d.mean(), d.median(), d.p99());
    return d.mean();
  };

  std::printf("cross-process PPC round trip and bulk bandwidth\n");
  std::printf("===============================================\n");

  // 1. In-process reference: the xcall ring against a busy-polling owner
  // thread — the lane the shm transport mirrors cell-for-cell.
  double inproc_mean = 0;
  {
    rt::Runtime rt_(2);
    const rt::SlotId me = rt_.register_thread();
    const EntryPointId ep =
        rt_.bind({.name = "null"}, 700, [](rt::RtCtx&, ppc::RegSet& regs) {
          ppc::set_rc(regs, Status::kOk);
        });
    std::atomic<bool> stop{false};
    std::atomic<bool> up{false};
    std::thread owner([&] {
      const rt::SlotId s = rt_.register_thread();
      up.store(true, std::memory_order_release);
      while (!stop.load(std::memory_order_acquire)) {
        if (rt_.poll(s) == 0) std::this_thread::yield();
      }
    });
    while (!up.load(std::memory_order_acquire)) std::this_thread::yield();
    ppc::RegSet regs;
    inproc_mean = bench("inproc_ring_rtt", [&] {
      ppc::set_op(regs, 1);
      rt_.call_remote(me, 1, 1, ep, regs);
    });
    stop.store(true, std::memory_order_release);
    owner.join();
  }

  // 2. The shm lane, threaded: same protocol, same address space. The gap
  // between this row and (1) is pure protocol cost (wait-block pop, cell
  // CAS+publish, done-word spin vs the runtime's ring machinery).
  double shm_threaded_mean = 0;
  obs::CounterSnapshot warm_peer, warm_srv;
  {
    const std::string name = uniq_name("thr");
    shm::Server server(name);
    server.bind(&null_handler, nullptr);
    std::atomic<bool> done{false};
    std::thread srv([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (server.poll() == 0) std::this_thread::yield();
      }
    });
    shm::Peer peer(name, 1);
    ppc::RegSet regs;
    shm_threaded_mean = bench("shm_rtt_threaded", [&] { peer.call(1, regs); });

    // Warm-phase audit: 1000 calls after the measured run book exactly
    // 1000 calls_remote / 1000 drained cells — and zero of everything
    // else (no locks, no allocations, no pool traffic on either side).
    const obs::CounterSnapshot p0 = peer.counters().snapshot();
    const obs::CounterSnapshot s0 = server.counters().snapshot();
    for (int i = 0; i < 1000; ++i) peer.call(1, regs);
    warm_peer = peer.counters().snapshot().delta(p0);
    warm_srv = server.counters().snapshot().delta(s0);
    std::printf("shm warm-phase audit over 1000 calls: calls_remote=%llu "
                "cells_drained=%llu locks_taken=%llu mailbox_allocs=%llu\n",
                static_cast<unsigned long long>(
                    warm_peer.get(obs::Counter::kCallsRemote)),
                static_cast<unsigned long long>(
                    warm_srv.get(obs::Counter::kXcallCellsDrained)),
                static_cast<unsigned long long>(
                    warm_peer.get(obs::Counter::kLocksTaken) +
                    warm_srv.get(obs::Counter::kLocksTaken)),
                static_cast<unsigned long long>(
                    warm_peer.get(obs::Counter::kMailboxAllocs) +
                    warm_srv.get(obs::Counter::kMailboxAllocs)));
    done.store(true, std::memory_order_release);
    srv.join();
  }

  // 3. The shm lane, forked: caller and server in different processes —
  // the tentpole configuration. On one CPU every round trip pays the
  // same two context switches as (1); the gate holds this within 3x.
  double shm_cross_mean = 0;
  {
    const std::string name = uniq_name("xproc");
    const pid_t child = spawn_server(name);
    wait_for_transport(name);
    {
      shm::Peer peer(name, /*program=*/1);
      warm_null_ep(peer);
      ppc::RegSet regs;
      shm_cross_mean =
          bench("shm_rtt_cross_process", [&] { peer.call(1, regs); });
      peer.request_stop();
    }
    int st = 0;
    ::waitpid(child, &st, 0);
  }

  // 4. Bulk bandwidth, forked: parent writes the payload into a granted
  // region, one descriptor-carrying call delivers it. Three server-side
  // modes, in descending zero-copy purity: ep 4 DELIVERS (grant-checked
  // resolve, payload addressable, nothing copied — the transport cost,
  // and the gated comparison), ep 3 additionally reads every byte in
  // place (a real consumer workload, still zero copies), ep 2 pulls the
  // payload through CopyServer::copy_from into a stage (one grant-checked
  // memcpy — the CopyTo/CopyFrom engine). The pipe baseline delivers the
  // same payload into the receiver's buffer — the cheapest a pipe can
  // do it, which is already two copies (user -> pipe buffer -> user) in
  // 64 KiB slices. Cell-traffic audit for the O(1) claim runs threaded
  // below.
  struct BulkRow {
    std::size_t bytes;
    double deliver_mbps;  // ep 4: descriptor handoff only
    double inplace_mbps;  // ep 3: full read pass, in place
    double copy_mbps;     // ep 2: staged CopyServer pull
    double pipe_mbps;
  };
  std::vector<BulkRow> bulk;
  const std::size_t kSizes[] = {4096, 64 * 1024, 1u << 20};
  const int kIters[] = {2000, 500, 96};
  {
    const std::string name = uniq_name("bulk");
    const pid_t child = spawn_server(name);
    wait_for_transport(name);
    {
      shm::Peer peer(name, /*program=*/1);
      warm_null_ep(peer);
      const std::uint32_t region = peer.grant_region(1u << 20);
      std::byte* base = peer.region_base(region);
      for (int s = 0; s < 3; ++s) {
        const std::size_t bytes = kSizes[s];
        const int iters = kIters[s];
        ppc::RegSet regs;
        const auto seg =
            rt::bulk_region(region, 0, static_cast<std::uint32_t>(bytes));
        std::memset(base, 0x2A, bytes);
        double mbps[3] = {0, 0, 0};  // [ep - 2]
        for (const shm::ShmEp ep : {shm::ShmEp{4}, shm::ShmEp{3},
                                    shm::ShmEp{2}}) {
          rt::bulk_seg_pack(regs, 0, seg);
          peer.call(ep, regs);  // warm the server's region mapping
          const double t0 = now_ns();
          for (int i = 0; i < iters; ++i) {
            // The producer really writes each round.
            base[i % bytes] = static_cast<std::byte>(i);
            rt::bulk_seg_pack(regs, 0, seg);
            if (peer.call(ep, regs) != Status::kOk) return 1;
          }
          mbps[ep - 2] = static_cast<double>(bytes) * iters /
                         ((now_ns() - t0) / 1e9) / 1e6;
        }
        bulk.push_back({bytes, mbps[2], mbps[1], mbps[0], 0.0});
      }
      peer.request_stop();
    }
    int st = 0;
    ::waitpid(child, &st, 0);
  }
  // The pipe baseline: same payload, delivered into the receiver's
  // buffer, ack-per-message discipline.
  {
    int data[2], ack[2];
    if (::pipe(data) != 0 || ::pipe(ack) != 0) return 1;
    const pid_t child = ::fork();
    if (child == 0) {
      ::close(data[1]);
      ::close(ack[0]);
      std::vector<std::byte> buf(1u << 20);
      for (int s = 0; s < 3; ++s) {
        for (int i = 0; i < kIters[s] + 1; ++i) {  // +1 warm round
          std::size_t got = 0;
          while (got < kSizes[s]) {
            const ssize_t n =
                ::read(data[0], buf.data() + got, kSizes[s] - got);
            if (n <= 0) ::_exit(2);
            got += static_cast<std::size_t>(n);
          }
          // The first byte rides the ack, as in the shm delivery ep.
          std::uint32_t ok = static_cast<std::uint32_t>(buf[0]) | 1u;
          if (::write(ack[1], &ok, 4) != 4) ::_exit(3);
        }
      }
      ::_exit(0);
    }
    ::close(data[0]);
    ::close(ack[1]);
    std::vector<std::byte> payload(1u << 20, std::byte{0x2A});
    for (int s = 0; s < 3; ++s) {
      const std::size_t bytes = kSizes[s];
      const int iters = kIters[s];
      auto send_one = [&] {
        std::size_t put = 0;
        while (put < bytes) {
          const ssize_t n = ::write(data[1], payload.data() + put, bytes - put);
          if (n <= 0) ::_exit(4);
          put += static_cast<std::size_t>(n);
        }
        std::uint32_t ok = 0;
        if (::read(ack[0], &ok, 4) != 4) ::_exit(5);
      };
      send_one();  // warm round
      const double t0 = now_ns();
      for (int i = 0; i < iters; ++i) {
        payload[i % bytes] = static_cast<std::byte>(i);
        send_one();
      }
      bulk[static_cast<std::size_t>(s)].pipe_mbps =
          static_cast<double>(bytes) * iters / ((now_ns() - t0) / 1e9) / 1e6;
    }
    ::close(data[1]);
    ::close(ack[0]);
    int st = 0;
    ::waitpid(child, &st, 0);
  }
  for (const BulkRow& r : bulk) {
    std::printf("bulk %7zu B: deliver %9.1f MB/s  in-place %8.1f MB/s  "
                "copy %8.1f MB/s  pipe %8.1f MB/s  (%.1fx deliver/pipe)\n",
                r.bytes, r.deliver_mbps, r.inplace_mbps, r.copy_mbps,
                r.pipe_mbps, r.deliver_mbps / r.pipe_mbps);
  }

  // 5. O(1) cell traffic, threaded so both counter blocks are readable:
  // 64 bulk calls of 1 MiB drain exactly 64 cells — the payload moved
  // 64 MiB while the ring moved 4 KiB of cells.
  double bulk_cells_per_call = 0;
  {
    const std::string name = uniq_name("cells");
    shm::Server server(name);
    BulkSink sink;
    server.bind(&null_handler, nullptr);
    const shm::ShmEp bulk_ep = server.bind(&BulkSink::run, &sink);
    std::atomic<bool> done{false};
    std::thread srv([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (server.poll() == 0) std::this_thread::yield();
      }
    });
    shm::Peer peer(name, 1);
    const std::uint32_t region = peer.grant_region(1u << 20);
    std::memset(peer.region_base(region), 0x11, 1u << 20);
    ppc::RegSet regs;
    rt::bulk_seg_pack(regs, 0, rt::bulk_region(region, 0, 1u << 20));
    peer.call(bulk_ep, regs);  // map the grant before snapshotting
    const obs::CounterSnapshot s0 = server.counters().snapshot();
    constexpr int kBulkCalls = 64;
    for (int i = 0; i < kBulkCalls; ++i) {
      if (peer.call(bulk_ep, regs) != Status::kOk) return 1;
    }
    const obs::CounterSnapshot d = server.counters().snapshot().delta(s0);
    bulk_cells_per_call =
        static_cast<double>(d.get(obs::Counter::kXcallCellsDrained)) /
        kBulkCalls;
    std::printf("bulk cell audit: %d x 1 MiB moved %llu bytes over %llu "
                "cells (%.2f cells/call)\n",
                kBulkCalls,
                static_cast<unsigned long long>(
                    d.get(obs::Counter::kBulkCopyBytes)),
                static_cast<unsigned long long>(
                    d.get(obs::Counter::kXcallCellsDrained)),
                bulk_cells_per_call);
    done.store(true, std::memory_order_release);
    srv.join();
  }

  const double vs_inproc = shm_cross_mean / inproc_mean;
  const double bulk_1m = bulk[2].deliver_mbps / bulk[2].pipe_mbps;
  const double bulk_1m_copy = bulk[2].copy_mbps / bulk[2].pipe_mbps;
  std::printf("\nshm cross-process RTT %.2fx in-process ring; 1 MiB bulk "
              "%.1fx pipe bandwidth\n",
              vs_inproc, bulk_1m);

  obs::BenchReport report("shm_ppc");
  report.meta("unit", "ns_per_call");
  report.meta("batch", static_cast<double>(kBatch));
  report.meta("batches", static_cast<double>(kMeasuredBatches));
  report.meta("warmup_iters", static_cast<double>(kWarmupIters));
  for (const NamedDist& d : dists) report.series(d.name, d.dist);
  report.scalar("shm_vs_inproc_rtt", vs_inproc);
  report.scalar("shm_threaded_vs_inproc_rtt", shm_threaded_mean / inproc_mean);
  report.scalar("bulk_1m_speedup_vs_pipe", bulk_1m);
  report.scalar("bulk_1m_copy_speedup_vs_pipe", bulk_1m_copy);
  report.scalar("bulk_cells_per_call", bulk_cells_per_call);
  for (const BulkRow& r : bulk) {
    report.row("bulk_bandwidth")
        .cell("bytes", static_cast<double>(r.bytes))
        .cell("shm_deliver_mbps", r.deliver_mbps)
        .cell("shm_inplace_mbps", r.inplace_mbps)
        .cell("shm_copy_mbps", r.copy_mbps)
        .cell("pipe_mbps", r.pipe_mbps)
        .cell("speedup", r.deliver_mbps / r.pipe_mbps);
  }
  report.counters("shm_warm_phase_peer", warm_peer);
  report.counters("shm_warm_phase_server", warm_srv);
  if (!report.write()) return 1;
  return 0;
}

#else  // !__linux__

int main() {
  std::printf("shm_ppc: POSIX shm transport is Linux-only; nothing to do\n");
  return 0;
}

#endif
