// Prices the observability layer itself.
//
// Two measurements, one per layer:
//
// 1. Host runtime (rt::Runtime): the fast path compiles twice from the same
//    template — once as deployed and once with the instrumentation compiled
//    out (call_unobserved_for_benchmark, which exists only for this bench).
//    The paired A/B difference is the exact cost of the counter stores. On
//    an allocation-bound core one extra read-modify-write costs ~half a
//    cycle no matter where it sits, so against a host null call of only a
//    few nanoseconds this is a few percent — reported honestly below.
//    (The same change that added the counters also removed the per-call
//    std::function copy from the fast path, so the instrumented call is
//    ~30% faster than the pre-observability one; the marginal here is
//    measured against the optimized, stripped twin, the harshest baseline.)
//
// 2. Simulated facility (the paper's warm null PPC, the repo headline):
//    its warm path performs three counter increments (calls_sync,
//    worker_pool_hits, cd_recycles). Charging each at the per-increment
//    cost measured in (1) and comparing against the host time of one warm
//    simulated call gives the counters-on overhead on the null-PPC latency;
//    the < 2% budget is evaluated here. The increments never touch the
//    simulated clock, so in simulated cycles the overhead is exactly zero.
//
// The trace ring is compile-time gated; when HPPC_TRACE is off the hooks
// expand to nothing and the tracer's cost is zero by construction.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/stats.h"
#include "kernel/machine.h"
#include "obs/bench_metrics.h"
#include "ppc/facility.h"
#include "rt/runtime.h"
#include "sim/config.h"

using namespace hppc;

namespace {

constexpr int kWarmup = 2'000;
constexpr int kBatches = 3'000;
constexpr int kBatch = 128;

// Counter increments on the simulated facility's warm null-PPC path:
// calls_sync + worker_pool_hits + cd_recycles (see ppc/facility.cpp).
constexpr double kSimIncsPerWarmCall = 3.0;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main() {
  // -------------------------------------------------------------------
  // 1. Host runtime: shipped vs stripped, paired batches.
  // -------------------------------------------------------------------
  rt::Runtime rt_(1);
  const rt::SlotId slot = rt_.register_thread();
  const EntryPointId ep = rt_.bind(
      {.name = "null"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
  ppc::RegSet regs;

  Percentiles stripped_ns;
  Percentiles shipped_ns;
  Percentiles paired_delta_ns;
  for (int i = 0; i < kWarmup; ++i) {
    ppc::set_op(regs, 1);
    rt_.call(slot, 1, ep, regs);
  }
  auto run_stripped = [&] {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) {
      ppc::set_op(regs, 1);
      rt_.call_unobserved_for_benchmark(slot, 1, ep, regs);
    }
    return (now_ns() - t0) / kBatch;
  };
  auto run_shipped = [&] {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) {
      ppc::set_op(regs, 1);
      rt_.call(slot, 1, ep, regs);
    }
    return (now_ns() - t0) / kBatch;
  };
  for (int b = 0; b < kBatches; ++b) {
    // Alternate which variant runs first within the pair: whichever loop
    // runs second inherits the other's branch-predictor and i-cache state,
    // and that position penalty would otherwise masquerade as counter cost.
    double stripped, shipped;
    if ((b & 1) == 0) {
      stripped = run_stripped();
      shipped = run_shipped();
    } else {
      shipped = run_shipped();
      stripped = run_stripped();
    }
    stripped_ns.add(stripped);
    shipped_ns.add(shipped);
    paired_delta_ns.add(shipped - stripped);
  }

  // Each batch pair runs back to back, so the per-pair delta is immune to
  // the slow clock-frequency and scheduler drift that dominates a shared
  // single-core container; with the in-pair order alternating, the median
  // of the paired deltas is a robust estimate of what the instrumentation
  // really costs (interference hits a pair symmetrically and washes out).
  const double host_marginal_ns =
      std::max(0.0, paired_delta_ns.median());
  const double host_overhead_pct =
      100.0 * host_marginal_ns / stripped_ns.median();

  // -------------------------------------------------------------------
  // 2. Simulated facility: host nanoseconds per warm null PPC.
  // -------------------------------------------------------------------
  kernel::Machine machine(sim::hector_config(1));
  ppc::PpcFacility ppc_(machine);
  auto& as = machine.create_address_space(100, 0);
  kernel::Process& client =
      machine.create_process(100, &as, "client", 0);
  auto& server_as = machine.create_address_space(700, 0);
  const EntryPointId sim_ep =
      ppc_.bind({.name = "null"}, &server_as, 700,
                [](ppc::ServerCtx&, ppc::RegSet& r) {
                  ppc::set_rc(r, Status::kOk);
                });
  ppc::RegSet sim_regs;
  for (int i = 0; i < kWarmup; ++i) {
    ppc::set_op(sim_regs, 1);
    ppc_.call(machine.cpu(0), client, sim_ep, sim_regs);
  }
  Percentiles sim_ns;
  for (int b = 0; b < kBatches / 4; ++b) {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) {
      ppc::set_op(sim_regs, 1);
      ppc_.call(machine.cpu(0), client, sim_ep, sim_regs);
    }
    sim_ns.add((now_ns() - t0) / kBatch);
  }
  // One rt counter increment and one facility counter increment are the
  // same instruction (SlotCounters::inc, a plain add-to-memory), so the
  // per-increment cost measured by the A/B harness above prices the
  // facility's three warm-path increments.
  const double sim_marginal_ns = kSimIncsPerWarmCall * host_marginal_ns;
  const double sim_overhead_pct =
      100.0 * sim_marginal_ns / sim_ns.median();

#if defined(HPPC_TRACE) && HPPC_TRACE
  const double trace_enabled = 1.0;
#else
  const double trace_enabled = 0.0;
#endif

  std::printf("observability overhead on the warm null PPC\n");
  std::printf("===========================================\n");
  std::printf("host rt call, shipped:  min %7.2f ns  p50 %7.2f  p99 %7.2f\n",
              shipped_ns.min(), shipped_ns.median(), shipped_ns.p99());
  std::printf("host rt call, stripped: min %7.2f ns  p50 %7.2f\n",
              stripped_ns.min(), stripped_ns.median());
  std::printf("host marginal:          %7.2f ns/call (%.2f%% of the %.1f ns "
              "host null call)\n",
              host_marginal_ns, host_overhead_pct, stripped_ns.median());
  std::printf("sim warm null PPC:      %7.2f ns/call host time\n",
              sim_ns.median());
  std::printf("counters-on overhead:   %.3f%% of warm null-PPC latency "
              "(budget: 2%%; %.0f increments x %.2f ns)\n",
              sim_overhead_pct, kSimIncsPerWarmCall, host_marginal_ns);
  std::printf("simulated-cycle cost:   0 (counters never touch the sim "
              "clock)\n");
  std::printf("trace hooks:            %s\n",
              trace_enabled != 0.0
                  ? "compiled in (HPPC_TRACE=1)"
                  : "compiled out (HPPC_TRACE off): zero instructions");

  obs::BenchReport report("obs_overhead");
  report.meta("unit", "ns_per_call");
  report.meta("trace_enabled", trace_enabled);
  report.series("host_call_shipped_ns", shipped_ns);
  report.series("host_call_stripped_ns", stripped_ns);
  report.series("sim_null_ppc_host_ns", sim_ns);
  report.scalar("host_marginal_ns_per_call", host_marginal_ns);
  report.scalar("host_overhead_pct", host_overhead_pct);
  report.scalar("sim_incs_per_warm_call", kSimIncsPerWarmCall);
  report.scalar("counters_on_overhead_pct", sim_overhead_pct);
  report.scalar("budget_pct", 2.0);
  if (!report.write()) return 1;
  if (trace_enabled != 0.0) {
    // A trace build measures counters + ring writes + two steady-clock
    // reads per call; the 2% budget is a claim about the always-on
    // counters, judged on the shipping (trace-off) configuration.
    std::printf("NOTE: HPPC_TRACE build - marginal includes the tracer; "
                "the counter budget gate applies to trace-off builds.\n");
    return 0;
  }
  return sim_overhead_pct < 2.0 ? 0 : 2;
}
