// Prices the observability layer itself.
//
// Three host variants of the same fast path, compiled from one template
// (Runtime::call_impl<ObsLevel>), measured in rotating-order batches:
//
//   stripped  ObsLevel::kStripped  no instrumentation at all
//             (call_unobserved_for_benchmark, exists only for this bench)
//   counters  ObsLevel::kCounters  the always-on counter stores
//             (call_counters_only_for_benchmark, ditto)
//   full      ObsLevel::kFull      counters + RTT histogram + trace spans
//             (Runtime::call — what ships)
//
// The paired batch deltas isolate each layer's marginal cost:
//
//   counters - stripped  = the counter stores          -> counters_on_*
//   full     - stripped  = everything the default path -> trace_build_*
//                          carries (tsc reads, histogram record, span
//                          bookkeeping when a trace is live)
//
// A separate micro-bench prices one SlotHistograms::record (the same plain
// add-to-memory discipline as a counter inc, plus a bit_width).
//
// The CI-gated number is `histograms_on_overhead_pct`: the cost of the
// always-on instrumentation on the simulated facility's warm null PPC —
// three counter increments plus one histogram record per warm call (see
// ppc/facility.cpp), priced at the marginals measured here, against the
// host time of one warm simulated call. Budget: < 2%. The increments and
// records never touch the simulated clock, so in simulated cycles the
// overhead is exactly zero.
//
// `trace_build_overhead_pct` is diagnostic only: it prices the full default
// host path (histograms + two tsc reads, plus span machinery in HPPC_TRACE
// builds) against the stripped twin. It is not gated — the host runtime's
// null call is a few nanoseconds, so whole-percent swings there are noise
// at warm-null-PPC scale.
//
// The trace ring is compile-time gated; when HPPC_TRACE is off the span
// hooks expand to nothing and untraced calls skip span minting entirely.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/stats.h"
#include "kernel/machine.h"
#include "obs/bench_metrics.h"
#include "obs/histogram.h"
#include "ppc/facility.h"
#include "rt/runtime.h"
#include "sim/config.h"

using namespace hppc;

namespace {

constexpr int kWarmup = 2'000;
constexpr int kBatches = 3'000;
constexpr int kBatch = 128;

// Always-on instrumentation on the simulated facility's warm null-PPC path:
// three counter increments (calls_sync + worker_pool_hits + cd_recycles)
// and one histogram record (rtt_sync) — see ppc/facility.cpp.
constexpr double kSimIncsPerWarmCall = 3.0;
constexpr double kSimHistRecsPerWarmCall = 1.0;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main() {
  // -------------------------------------------------------------------
  // 1. Host runtime: stripped vs counters vs full, rotating batches.
  // -------------------------------------------------------------------
  rt::Runtime rt_(1);
  const rt::SlotId slot = rt_.register_thread();
  const EntryPointId ep = rt_.bind(
      {.name = "null"}, 700,
      [](rt::RtCtx&, ppc::RegSet& regs) { ppc::set_rc(regs, Status::kOk); });
  ppc::RegSet regs;

  Percentiles stripped_ns;
  Percentiles counters_ns;
  Percentiles full_ns;
  Percentiles counters_delta_ns;
  Percentiles full_delta_ns;
  for (int i = 0; i < kWarmup; ++i) {
    ppc::set_op(regs, 1);
    rt_.call(slot, 1, ep, regs);
  }
  const obs::CounterSnapshot host_warm_before = rt_.counters(slot).snapshot();
  auto run_stripped = [&] {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) {
      ppc::set_op(regs, 1);
      rt_.call_unobserved_for_benchmark(slot, 1, ep, regs);
    }
    return (now_ns() - t0) / kBatch;
  };
  auto run_counters = [&] {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) {
      ppc::set_op(regs, 1);
      rt_.call_counters_only_for_benchmark(slot, 1, ep, regs);
    }
    return (now_ns() - t0) / kBatch;
  };
  auto run_full = [&] {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) {
      ppc::set_op(regs, 1);
      rt_.call(slot, 1, ep, regs);
    }
    return (now_ns() - t0) / kBatch;
  };
  for (int b = 0; b < kBatches; ++b) {
    // Rotate which variant runs first within the triple: whichever loop
    // runs later inherits the others' branch-predictor and i-cache state,
    // and that position penalty would otherwise masquerade as
    // instrumentation cost. Each triple runs back to back, so the per-batch
    // deltas are immune to the slow clock-frequency and scheduler drift
    // that dominates a shared container (interference hits the triple
    // symmetrically and washes out of the median delta).
    double stripped = 0, counters = 0, full = 0;
    for (int k = 0; k < 3; ++k) {
      switch ((b + k) % 3) {
        case 0: stripped = run_stripped(); break;
        case 1: counters = run_counters(); break;
        default: full = run_full(); break;
      }
    }
    stripped_ns.add(stripped);
    counters_ns.add(counters);
    full_ns.add(full);
    counters_delta_ns.add(counters - stripped);
    full_delta_ns.add(full - stripped);
  }
  const obs::CounterSnapshot host_warm =
      rt_.counters(slot).snapshot().delta(host_warm_before);

  const double host_counters_marginal_ns =
      std::max(0.0, counters_delta_ns.median());
  const double host_full_marginal_ns = std::max(0.0, full_delta_ns.median());
  const double trace_build_overhead_pct =
      100.0 * host_full_marginal_ns / stripped_ns.median();

  // -------------------------------------------------------------------
  // 2. One histogram record, micro-benched in isolation.
  // -------------------------------------------------------------------
  // Identical loops except for the record; the value generator (xorshift)
  // keeps the compiler from collapsing either loop, and the difference
  // prices record() alone: a bit_width and a single-writer relaxed
  // load+store on an owned line — a counter inc plus a shift, basically.
  obs::SlotHistograms bench_hists;
  constexpr int kHistIters = 200'000;
  auto hist_base_loop = [&] {
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    const double t0 = now_ns();
    for (int i = 0; i < kHistIters; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    const double per = (now_ns() - t0) / kHistIters;
    return x != 0 ? per : per + 1e9;  // keep x live
  };
  auto hist_rec_loop = [&] {
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    const double t0 = now_ns();
    for (int i = 0; i < kHistIters; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      bench_hists.record(obs::Hist::kRttSync, x & 0xFFFFu);
    }
    const double per = (now_ns() - t0) / kHistIters;
    return x != 0 ? per : per + 1e9;
  };
  Percentiles hist_delta_ns;
  for (int b = 0; b < 32; ++b) {
    double base, rec;
    if ((b & 1) == 0) {
      base = hist_base_loop();
      rec = hist_rec_loop();
    } else {
      rec = hist_rec_loop();
      base = hist_base_loop();
    }
    hist_delta_ns.add(rec - base);
  }
  const double hist_record_ns = std::max(0.0, hist_delta_ns.median());

  // -------------------------------------------------------------------
  // 3. Simulated facility: host nanoseconds per warm null PPC.
  // -------------------------------------------------------------------
  kernel::Machine machine(sim::hector_config(1));
  ppc::PpcFacility ppc_(machine);
  auto& as = machine.create_address_space(100, 0);
  kernel::Process& client =
      machine.create_process(100, &as, "client", 0);
  auto& server_as = machine.create_address_space(700, 0);
  const EntryPointId sim_ep =
      ppc_.bind({.name = "null"}, &server_as, 700,
                [](ppc::ServerCtx&, ppc::RegSet& r) {
                  ppc::set_rc(r, Status::kOk);
                });
  ppc::RegSet sim_regs;
  for (int i = 0; i < kWarmup; ++i) {
    ppc::set_op(sim_regs, 1);
    ppc_.call(machine.cpu(0), client, sim_ep, sim_regs);
  }
  const obs::CounterSnapshot sim_warm_before =
      machine.cpu(0).counters().snapshot();
  Percentiles sim_ns;
  for (int b = 0; b < kBatches / 4; ++b) {
    const double t0 = now_ns();
    for (int i = 0; i < kBatch; ++i) {
      ppc::set_op(sim_regs, 1);
      ppc_.call(machine.cpu(0), client, sim_ep, sim_regs);
    }
    sim_ns.add((now_ns() - t0) / kBatch);
  }
  const obs::CounterSnapshot sim_warm =
      machine.cpu(0).counters().snapshot().delta(sim_warm_before);

  // One rt counter increment and one facility counter increment are the
  // same instruction (SlotCounters::inc, a plain add-to-memory), so the
  // per-increment marginal measured by the A/B harness above prices the
  // facility's warm-path increments; the histogram record is priced by its
  // own micro-bench.
  const double counters_on_marginal_ns =
      kSimIncsPerWarmCall * host_counters_marginal_ns;
  const double histograms_on_marginal_ns =
      counters_on_marginal_ns + kSimHistRecsPerWarmCall * hist_record_ns;
  const double counters_on_overhead_pct =
      100.0 * counters_on_marginal_ns / sim_ns.median();
  const double histograms_on_overhead_pct =
      100.0 * histograms_on_marginal_ns / sim_ns.median();

#if defined(HPPC_TRACE) && HPPC_TRACE
  const double trace_enabled = 1.0;
#else
  const double trace_enabled = 0.0;
#endif

  std::printf("observability overhead on the warm null PPC\n");
  std::printf("===========================================\n");
  std::printf("host rt call, stripped: min %7.2f ns  p50 %7.2f\n",
              stripped_ns.min(), stripped_ns.median());
  std::printf("host rt call, counters: min %7.2f ns  p50 %7.2f\n",
              counters_ns.min(), counters_ns.median());
  std::printf("host rt call, full:     min %7.2f ns  p50 %7.2f  p99 %7.2f\n",
              full_ns.min(), full_ns.median(), full_ns.p99());
  std::printf("counter marginal:       %7.2f ns/call\n",
              host_counters_marginal_ns);
  std::printf("full-path marginal:     %7.2f ns/call (%.2f%% of the %.1f ns "
              "host null call; diagnostic only)\n",
              host_full_marginal_ns, trace_build_overhead_pct,
              stripped_ns.median());
  std::printf("hist record:            %7.3f ns\n", hist_record_ns);
  std::printf("sim warm null PPC:      %7.2f ns/call host time\n",
              sim_ns.median());
  std::printf("counters-on overhead:   %.3f%% of warm null-PPC latency "
              "(%.0f increments x %.2f ns)\n",
              counters_on_overhead_pct, kSimIncsPerWarmCall,
              host_counters_marginal_ns);
  std::printf("histograms-on overhead: %.3f%% of warm null-PPC latency "
              "(budget: 2%%; + %.0f record x %.3f ns)\n",
              histograms_on_overhead_pct, kSimHistRecsPerWarmCall,
              hist_record_ns);
  std::printf("simulated-cycle cost:   0 (counters and histograms never "
              "touch the sim clock)\n");
  std::printf("warm-path locks taken:  host %llu, sim %llu (must be 0)\n",
              static_cast<unsigned long long>(
                  host_warm.get(obs::Counter::kLocksTaken)),
              static_cast<unsigned long long>(
                  sim_warm.get(obs::Counter::kLocksTaken)));
  std::printf("trace hooks:            %s\n",
              trace_enabled != 0.0
                  ? "compiled in (HPPC_TRACE=1)"
                  : "compiled out (HPPC_TRACE off): zero instructions");

  obs::BenchReport report("obs_overhead");
  report.meta("unit", "ns_per_call");
  report.meta("trace_enabled", trace_enabled);
  // Which scalar the CI overhead gate reads (and what it budgets).
  report.meta("ci_gate_field", "histograms_on_overhead_pct");
  report.series("host_call_stripped_ns", stripped_ns);
  report.series("host_call_counters_ns", counters_ns);
  report.series("host_call_full_ns", full_ns);
  report.series("sim_null_ppc_host_ns", sim_ns);
  report.scalar("host_counters_marginal_ns_per_call",
                host_counters_marginal_ns);
  report.scalar("host_full_marginal_ns_per_call", host_full_marginal_ns);
  report.scalar("hist_record_ns", hist_record_ns);
  report.scalar("sim_incs_per_warm_call", kSimIncsPerWarmCall);
  report.scalar("sim_hist_recs_per_warm_call", kSimHistRecsPerWarmCall);
  report.scalar("counters_on_overhead_pct", counters_on_overhead_pct);
  report.scalar("histograms_on_overhead_pct", histograms_on_overhead_pct);
  report.scalar("trace_build_overhead_pct", trace_build_overhead_pct);
  report.scalar("budget_pct", 2.0);
  report.counters("host_warm", host_warm);
  report.counters("sim_warm", sim_warm);
  if (!report.write()) return 1;
  if (host_warm.get(obs::Counter::kLocksTaken) != 0 ||
      sim_warm.get(obs::Counter::kLocksTaken) != 0) {
    std::printf("FAIL: warm fast path took a lock\n");
    return 3;
  }
  if (trace_enabled != 0.0) {
    // A trace build's full path includes the span machinery; the 2% budget
    // is a claim about the always-on counters + histograms, judged on the
    // shipping (trace-off) configuration.
    std::printf("NOTE: HPPC_TRACE build - full-path marginal includes the "
                "tracer; the histogram budget gate applies to trace-off "
                "builds.\n");
    return 0;
  }
  return histograms_on_overhead_pct < 2.0 ? 0 : 2;
}
